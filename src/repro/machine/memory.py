"""Paged virtual memory with fault hooks and dirty tracking.

This is the substrate under the Native Offloader runtime's UVA manager
(paper, Section 4): page-granular mapping, a hookable page-fault path (used
for copy-on-demand), and per-page dirty bits (used for write-back at
finalization).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

DEFAULT_PAGE_SIZE = 4096

# Sub-page dirty tracking granularity (docs/uva-data-plane.md).  One bit
# of a page's dirty-block mask covers this many bytes; the UVA manager
# encodes write-back deltas as runs of dirty blocks.
SUBPAGE_BLOCK_BYTES = 128


class SegmentationFault(Exception):
    """Access to an unmapped address that no fault handler resolved."""

    def __init__(self, address: int, size: int = 1):
        super().__init__(f"segmentation fault at {address:#x} (size {size})")
        self.address = address
        self.size = size


FaultHandler = Callable[[int], bool]  # page_index -> handled?


class AddressSpace:
    """A byte-addressable virtual address space backed by pages.

    Pages are created on :meth:`map_page` (or by a fault handler).  Writes
    set a dirty bit; :meth:`collect_dirty_pages` snapshots and clears them,
    which is exactly the write-back step of the offload life cycle.
    """

    def __init__(self, page_size: int = DEFAULT_PAGE_SIZE):
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page size must be a positive power of two")
        self.page_size = page_size
        self.pages: Dict[int, bytearray] = {}
        self.dirty: Set[int] = set()
        self.fault_handler: Optional[FaultHandler] = None
        # Statistics consumed by the runtime and the evaluation harness.
        self.fault_count = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # Sub-page dirty-block masks (bit i covers bytes
        # [i*block_size, (i+1)*block_size) of the page).  Off by default;
        # the UVA manager enables it on the server space so write-back
        # can ship deltas instead of whole pages.
        self.track_subpage = False
        self.block_size = min(SUBPAGE_BLOCK_BYTES, page_size)
        self.blocks_per_page = self.page_size // self.block_size
        self.dirty_blocks: Dict[int, int] = {}
        self._block_shift = self.block_size.bit_length() - 1
        # Optional touched-page recording (reads and writes).  None means
        # no tracking; the UVA manager installs a set for the duration of
        # one offloaded invocation to drive adaptive prefetch.
        self.touched: Optional[Set[int]] = None

    # -- page management ----------------------------------------------------
    def page_index(self, address: int) -> int:
        return address // self.page_size

    def page_base(self, page_index: int) -> int:
        return page_index * self.page_size

    def is_mapped(self, address: int) -> bool:
        return self.page_index(address) in self.pages

    def map_page(self, page_index: int,
                 data: Optional[bytes] = None) -> bytearray:
        page = self.pages.get(page_index)
        if page is None:
            page = bytearray(self.page_size)
            self.pages[page_index] = page
        if data is not None:
            if len(data) != self.page_size:
                raise ValueError("page data size mismatch")
            page[:] = data
        return page

    def unmap_page(self, page_index: int) -> None:
        self.pages.pop(page_index, None)
        self.dirty.discard(page_index)
        self.dirty_blocks.pop(page_index, None)

    def mapped_pages(self) -> List[int]:
        return sorted(self.pages)

    def _page_for(self, page_index: int, address: int, size: int) -> bytearray:
        page = self.pages.get(page_index)
        if page is not None:
            return page
        self.fault_count += 1
        if self.fault_handler is not None and self.fault_handler(page_index):
            page = self.pages.get(page_index)
            if page is not None:
                return page
        raise SegmentationFault(address, size)

    # -- raw byte access ------------------------------------------------
    def read(self, address: int, size: int) -> bytes:
        self.bytes_read += size
        # Fast path: access within one page (the overwhelmingly common
        # case for scalar loads).
        off = address & (self.page_size - 1)
        if off + size <= self.page_size:
            pidx = address // self.page_size
            page = self.pages.get(pidx)
            if page is None:
                page = self._page_for(pidx, address, size)
            if self.touched is not None:
                self.touched.add(pidx)
            return bytes(page[off:off + size])
        out = bytearray()
        remaining = size
        addr = address
        while remaining > 0:
            pidx = self.page_index(addr)
            page = self._page_for(pidx, address, size)
            if self.touched is not None:
                self.touched.add(pidx)
            off = addr - self.page_base(pidx)
            chunk = min(remaining, self.page_size - off)
            out += page[off:off + chunk]
            addr += chunk
            remaining -= chunk
        return bytes(out)

    def write(self, address: int, data: bytes) -> None:
        size = len(data)
        self.bytes_written += size
        off = address & (self.page_size - 1)
        if off + size <= self.page_size:
            pidx = address // self.page_size
            page = self.pages.get(pidx)
            if page is None:
                page = self._page_for(pidx, address, size)
            page[off:off + size] = data
            self.dirty.add(pidx)
            if self.track_subpage:
                self._mark_blocks(pidx, off, size)
            if self.touched is not None:
                self.touched.add(pidx)
            return
        addr = address
        pos = 0
        remaining = size
        while remaining > 0:
            pidx = self.page_index(addr)
            page = self._page_for(pidx, address, len(data))
            off = addr - self.page_base(pidx)
            chunk = min(remaining, self.page_size - off)
            page[off:off + chunk] = data[pos:pos + chunk]
            self.dirty.add(pidx)
            if self.track_subpage:
                self._mark_blocks(pidx, off, chunk)
            if self.touched is not None:
                self.touched.add(pidx)
            addr += chunk
            pos += chunk
            remaining -= chunk

    def read_cstring(self, address: int, limit: int = 1 << 20) -> bytes:
        """Read a NUL-terminated byte string."""
        out = bytearray()
        addr = address
        while len(out) < limit:
            byte = self.read(addr, 1)
            if byte == b"\x00":
                return bytes(out)
            out += byte
            addr += 1
        raise ValueError(f"unterminated string at {address:#x}")

    # -- dirty-page machinery (write-back) ----------------------------------
    def _mark_blocks(self, page_index: int, offset: int,
                     length: int) -> None:
        b0 = offset >> self._block_shift
        b1 = (offset + length - 1) >> self._block_shift
        mask = ((1 << (b1 + 1)) - 1) & ~((1 << b0) - 1)
        self.dirty_blocks[page_index] = (
            self.dirty_blocks.get(page_index, 0) | mask)

    @property
    def full_block_mask(self) -> int:
        """The mask with every sub-page block set."""
        return (1 << self.blocks_per_page) - 1

    def clear_dirty(self) -> None:
        self.dirty.clear()
        self.dirty_blocks.clear()

    def dirty_pages(self) -> List[int]:
        return sorted(self.dirty)

    def collect_dirty_pages(self) -> Dict[int, bytes]:
        """Snapshot dirty page contents and clear the dirty set."""
        snapshot = {pidx: bytes(self.pages[pidx])
                    for pidx in sorted(self.dirty) if pidx in self.pages}
        self.dirty.clear()
        self.dirty_blocks.clear()
        return snapshot

    def page_bytes(self, page_index: int) -> bytes:
        return bytes(self.pages[page_index])

    def install_pages(self, pages: Dict[int, bytes],
                      mark_dirty: bool = False) -> None:
        for pidx, data in pages.items():
            self.map_page(pidx, data)
            if mark_dirty:
                self.dirty.add(pidx)

    def apply_delta(self, page_index: int,
                    records: Iterable[Tuple[int, bytes]],
                    mark_dirty: bool = False) -> None:
        """Patch an already-mapped page with (offset, bytes) records —
        the receive side of a sub-page delta transfer."""
        page = self.pages.get(page_index)
        if page is None:
            raise SegmentationFault(page_index * self.page_size)
        for offset, data in records:
            page[offset:offset + len(data)] = data
        if mark_dirty:
            self.dirty.add(page_index)
