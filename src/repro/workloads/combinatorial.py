"""Combinatorial-optimization workloads: 175.vpr, 300.twolf, 429.mcf.

175.vpr's target is a *loop inside try_place* (``try_place_while.cond``),
with tiny traffic (0.8 MB) — a near-ideal offload.  300.twolf reads its
cell file *during* the offloaded kernel, making it one of the remote-I/O
dominated programs of Figure 7.  429.mcf ships its whole arc network, so it
is bandwidth-sensitive like the compression pair.
"""

from .base import PaperRow, WorkloadSpec

_VPR_SRC = r"""
/* 175.vpr counterpart: simulated-annealing FPGA placement.  The hot
   annealing loop inside try_place is the offload target. */
#define GRID 28
#define BLOCKS 160
#define NETS 220

int *block_x;
int *block_y;
int *net_src;
int *net_dst;
unsigned int rng;
int iters_per_temp;

unsigned int vpr_rand() {
    rng = rng * 1664525 + 1013904223;
    return (rng >> 10) & 0xFFFF;
}

int net_cost(int n) {
    int s = net_src[n], d = net_dst[n];
    int dx = block_x[s] - block_x[d];
    int dy = block_y[s] - block_y[d];
    if (dx < 0) dx = -dx;
    if (dy < 0) dy = -dy;
    return dx + dy;
}

int total_cost(void) {
    int c = 0, n;
    for (n = 0; n < NETS; n++) c += net_cost(n);
    return c;
}

int try_place(void) {
    int temp = 1000;
    int cost = total_cost();
    while (temp > 10) {
        int i;
        for (i = 0; i < iters_per_temp; i++) {
            int b = (int)(vpr_rand() % BLOCKS);
            int ox = block_x[b], oy = block_y[b];
            int before = 0, after = 0, n;
            for (n = 0; n < NETS; n++) {
                if (net_src[n] == b || net_dst[n] == b)
                    before += net_cost(n);
            }
            block_x[b] = (int)(vpr_rand() % GRID);
            block_y[b] = (int)(vpr_rand() % GRID);
            for (n = 0; n < NETS; n++) {
                if (net_src[n] == b || net_dst[n] == b)
                    after += net_cost(n);
            }
            if (after > before
                && (int)(vpr_rand() % 1000) > temp) {
                block_x[b] = ox;   /* reject uphill move */
                block_y[b] = oy;
            } else {
                cost += after - before;
            }
        }
        temp = temp * 9 / 10;
    }
    return cost;
}

int main() {
    int i, final;
    scanf("%d", &iters_per_temp);
    block_x = (int*) malloc(BLOCKS * sizeof(int));
    block_y = (int*) malloc(BLOCKS * sizeof(int));
    net_src = (int*) malloc(NETS * sizeof(int));
    net_dst = (int*) malloc(NETS * sizeof(int));
    rng = 42;
    for (i = 0; i < BLOCKS; i++) {
        block_x[i] = (int)(vpr_rand() % GRID);
        block_y[i] = (int)(vpr_rand() % GRID);
    }
    for (i = 0; i < NETS; i++) {
        net_src[i] = (int)(vpr_rand() % BLOCKS);
        net_dst[i] = (int)(vpr_rand() % BLOCKS);
    }
    final = try_place();
    printf("final wirelength %d\n", final);
    return 0;
}
"""

VPR = WorkloadSpec(
    name="175.vpr",
    description="FPGA placement (simulated annealing)",
    source=_VPR_SRC,
    profile_stdin=b"1\n",
    eval_stdin=b"3\n",
    paper=PaperRow(loc="11.3k", exec_time_s=26.9,
                   offloaded_functions="9 / 272",
                   referenced_globals="672 / 760", fn_ptrs=3,
                   target="try_place_while.cond", coverage_pct=99.07,
                   invocations=1, traffic_mb=0.8),
)

_TWOLF_SRC = r"""
/* 300.twolf counterpart: standard-cell placement.  The kernel reads the
   cell description file chunk by chunk *inside* the offloaded region, so
   every read becomes an expensive remote input operation. */
#define CELLS 420

int *cell_w;
int *cell_pos;
int ncells;
unsigned int rng;
int passes;

unsigned int t_rand() {
    rng = rng * 22695477 + 1;
    return (rng >> 12) & 0x7FFF;
}

int local_cost(int i) {
    int c = 0;
    if (i > 0) {
        int gap = cell_pos[i] - (cell_pos[i - 1] + cell_w[i - 1]);
        c += gap < 0 ? -gap * 4 : gap / 2;
    }
    if (i < ncells - 1) {
        int gap = cell_pos[i + 1] - (cell_pos[i] + cell_w[i]);
        c += gap < 0 ? -gap * 4 : gap / 2;
    }
    return c;
}

int utemp(void *cellfile) {
    char line[64];
    int loaded = 0;
    int pass, cost = 0;
    /* stream cell widths from the design file (remote input);
       each record line describes four cells */
    while (loaded < ncells && fgets(line, 64, cellfile)) {
        int v = atoi(line);
        int k;
        for (k = 0; k < 8 && loaded < ncells; k++) {
            cell_w[loaded] = 2 + ((v + k * 7) % 23);
            loaded++;
        }
    }
    for (pass = 0; pass < passes; pass++) {
        int i;
        for (i = 0; i < 2600; i++) {
            int a = (int)(t_rand() % ncells);
            int b = (int)(t_rand() % ncells);
            int before, after, tmp;
            before = local_cost(a) + local_cost(b);
            tmp = cell_pos[a]; cell_pos[a] = cell_pos[b];
            cell_pos[b] = tmp;
            after = local_cost(a) + local_cost(b);
            if (after > before) {
                tmp = cell_pos[a]; cell_pos[a] = cell_pos[b];
                cell_pos[b] = tmp;
            } else {
                cost += after - before;
            }
        }
    }
    return cost;
}

int main() {
    void *f;
    int i, cost;
    scanf("%d %d", &ncells, &passes);
    cell_w = (int*) malloc(CELLS * sizeof(int));
    cell_pos = (int*) malloc(CELLS * sizeof(int));
    rng = 7;
    for (i = 0; i < ncells; i++) cell_pos[i] = (int)(t_rand() % 4096);
    f = fopen("cells.dat", "r");
    if (!f) { printf("no cell file\n"); return 1; }
    cost = utemp(f);
    fclose(f);
    printf("placement cost %d\n", cost);
    return 0;
}
"""

_CELL_FILE = "\n".join(str((i * 37) % 100) for i in range(600)).encode()

TWOLF = WorkloadSpec(
    name="300.twolf",
    description="Standard-cell place/route (annealing + cell file reads)",
    source=_TWOLF_SRC,
    profile_stdin=b"200 1\n",
    eval_stdin=b"400 2\n",
    profile_files={"cells.dat": _CELL_FILE},
    eval_files={"cells.dat": _CELL_FILE},
    paper=PaperRow(loc="17.8k", exec_time_s=157.8,
                   offloaded_functions="3 / 191",
                   referenced_globals="566 / 838", fn_ptrs=0,
                   target="utemp", coverage_pct=99.84,
                   invocations=1, traffic_mb=3.3),
    remote_input_heavy=True,
)

_MCF_SRC = r"""
/* 429.mcf counterpart: vehicle scheduling as min-cost-flow; repeated
   Bellman-Ford-flavoured relaxations over a large arc array (the whole
   network crosses the wire -> bandwidth sensitive). */
#define NODES_MAX 1600
#define ARCS_MAX 4500

int *arc_from;
int *arc_to;
int *arc_cost;
long *dist;
int nnodes;
int narcs;
int rounds;

long global_opt(void) {
    int r, a, i;
    long total = 0;
    for (i = 0; i < nnodes; i++) dist[i] = 1000000000;
    dist[0] = 0;
    for (r = 0; r < rounds; r++) {
        int changed = 0;
        for (a = 0; a < narcs; a++) {
            long nd = dist[arc_from[a]] + arc_cost[a];
            if (nd < dist[arc_to[a]]) {
                dist[arc_to[a]] = nd;
                changed = 1;
            }
        }
        if (!changed) {
            /* re-seed with a perturbed source to keep scheduling */
            dist[r % nnodes] = r;
        }
    }
    for (i = 0; i < nnodes; i++) {
        if (dist[i] < 1000000000) total += dist[i];
    }
    return total;
}

int main() {
    int i;
    long answer;
    unsigned int rng = 99;
    scanf("%d %d %d", &nnodes, &narcs, &rounds);
    arc_from = (int*) malloc(ARCS_MAX * sizeof(int));
    arc_to = (int*) malloc(ARCS_MAX * sizeof(int));
    arc_cost = (int*) malloc(ARCS_MAX * sizeof(int));
    dist = (long*) malloc(NODES_MAX * sizeof(long));
    for (i = 0; i < narcs; i++) {
        /* multiply-shift scaling avoids per-arc divisions */
        rng = rng * 1103515245 + 12345;
        arc_from[i] = (int)((((rng >> 16) & 0xFFFF) * (unsigned)nnodes)
                            >> 16);
        arc_to[i] = (int)((((rng >> 4) & 0xFFFF) * (unsigned)nnodes)
                          >> 16);
        arc_cost[i] = 1 + (int)(rng & 63);
    }
    answer = global_opt();
    printf("schedule cost %ld\n", answer);
    return 0;
}
"""

MCF = WorkloadSpec(
    name="429.mcf",
    description="Vehicle scheduling (min-cost-flow relaxation)",
    source=_MCF_SRC,
    profile_stdin=b"1000 3600 8\n",
    eval_stdin=b"1500 4200 12\n",
    paper=PaperRow(loc="1.6k", exec_time_s=104.8,
                   offloaded_functions="19 / 24",
                   referenced_globals="39 / 43", fn_ptrs=0,
                   target="global_opt", coverage_pct=99.55,
                   invocations=1, traffic_mb=47.9),
    comm_heavy=True,
)
