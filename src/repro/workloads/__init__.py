"""Evaluated workloads: the 17 SPEC-like C programs of Table 4, the
paper's chess running example, and the Table 2 Android-app survey data."""

from .base import PaperRow, WorkloadSpec
from .registry import (ALL_WORKLOADS, SPEC_WORKLOADS, WORKLOADS,
                       spec_names, workload)
from .chess import CHESS, CHESS_SRC, chess_stdin
from .android_apps import (AndroidApp, TOP20_APPS,
                           apps_with_heavy_native_runtime,
                           apps_with_majority_native_code, survey_summary)

__all__ = [
    "PaperRow", "WorkloadSpec",
    "ALL_WORKLOADS", "SPEC_WORKLOADS", "WORKLOADS", "spec_names",
    "workload",
    "CHESS", "CHESS_SRC", "chess_stdin",
    "AndroidApp", "TOP20_APPS", "apps_with_heavy_native_runtime",
    "apps_with_majority_native_code", "survey_summary",
]
