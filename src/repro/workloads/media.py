"""Media workloads: 177.mesa, 464.h264ref, 482.sphinx3.

177.mesa renders with per-material shading dispatched through function
pointers (Table 4 counts 1169 fn-ptr uses).  464.h264ref encodes a video it
reads *during* the offloaded region (remote input) and dispatches SAD
kernels through pointers.  482.sphinx3's target is the utterance loop in
main, streaming feature frames from a file.
"""

from .base import PaperRow, WorkloadSpec

_MESA_SRC = r"""
/* 177.mesa counterpart: software rasterizer with per-material shader
   function pointers. */
#define W 96
#define H 72
#define NTRI 90

typedef int (*SHADER)(int, int, int);

int *framebuf;
int *tri;         /* NTRI x 7: x0 y0 x1 y1 x2 y2 material */
unsigned int rng;

unsigned int m_rand() {
    rng = rng * 1103515245 + 12345;
    return (rng >> 11) & 0x7FFF;
}

int shade_flat(int x, int y, int m)   { return (m * 37) & 255; }
int shade_gouraud(int x, int y, int m) {
    return ((x * 3 + y * 5 + m * 11) / 2) & 255;
}
int shade_textured(int x, int y, int m) {
    int u = (x * 13 + m) & 15;
    int v = (y * 7 + m) & 15;
    return ((u * v) ^ (u + v + m)) & 255;
}
int shade_specular(int x, int y, int m) {
    int d = (x - 48) * (x - 48) + (y - 36) * (y - 36);
    return (255 * 48) / (d / 8 + 48 + m % 7);
}

SHADER shaders[4] = { shade_flat, shade_gouraud, shade_textured,
                      shade_specular };

int edge(int x0, int y0, int x1, int y1, int x, int y) {
    return (x1 - x0) * (y - y0) - (y1 - y0) * (x - x0);
}

void Render(void) {
    int t, x, y;
    for (t = 0; t < NTRI; t++) {
        int x0 = tri[t*7], y0 = tri[t*7+1];
        int x1 = tri[t*7+2], y1 = tri[t*7+3];
        int x2 = tri[t*7+4], y2 = tri[t*7+5];
        int mat = tri[t*7+6];
        SHADER shade = shaders[mat % 4];
        int minx = x0 < x1 ? x0 : x1; int maxx = x0 > x1 ? x0 : x1;
        int miny = y0 < y1 ? y0 : y1; int maxy = y0 > y1 ? y0 : y1;
        if (x2 < minx) minx = x2;
        if (x2 > maxx) maxx = x2;
        if (y2 < miny) miny = y2;
        if (y2 > maxy) maxy = y2;
        for (y = miny; y <= maxy; y++) {
            for (x = minx; x <= maxx; x++) {
                int e0 = edge(x0, y0, x1, y1, x, y);
                int e1 = edge(x1, y1, x2, y2, x, y);
                int e2 = edge(x2, y2, x0, y0, x, y);
                if ((e0 >= 0 && e1 >= 0 && e2 >= 0)
                    || (e0 <= 0 && e1 <= 0 && e2 <= 0)) {
                    framebuf[y * W + x] = shade(x, y, mat);
                }
            }
        }
    }
}

int main() {
    int i, frames, f, acc;
    scanf("%d", &frames);
    framebuf = (int*) malloc(W * H * sizeof(int));
    tri = (int*) malloc(NTRI * 7 * sizeof(int));
    rng = 321;
    for (i = 0; i < NTRI; i++) {
        int cx = (int)(m_rand() % W);
        int cy = (int)(m_rand() % H);
        int ex = cx + 2 + (int)(m_rand() % 12);
        int ey = cy + 1 + (int)(m_rand() % 6);
        int fx2 = cx + 1 + (int)(m_rand() % 6);
        int fy2 = cy + 2 + (int)(m_rand() % 12);
        tri[i*7]   = cx;
        tri[i*7+1] = cy;
        tri[i*7+2] = ex < W - 1 ? ex : W - 1;
        tri[i*7+3] = ey < H - 1 ? ey : H - 1;
        tri[i*7+4] = fx2 < W - 1 ? fx2 : W - 1;
        tri[i*7+5] = fy2 < H - 1 ? fy2 : H - 1;
        tri[i*7+6] = (int)(m_rand() % 4);
    }
    memset(framebuf, 0, W * H * sizeof(int));
    for (f = 0; f < frames; f++) {
        Render();
    }
    acc = 0;
    for (i = 0; i < W * H; i++) acc = (acc + framebuf[i]) % 1000003;
    printf("rendered %d frames hash %d\n", frames, acc);
    return 0;
}
"""

MESA = WorkloadSpec(
    name="177.mesa",
    description="3-D graphics (software rasterizer, shader fn-ptrs)",
    source=_MESA_SRC,
    profile_stdin=b"1\n",
    eval_stdin=b"2\n",
    paper=PaperRow(loc="42.2k", exec_time_s=120.2,
                   offloaded_functions="11 / 1105",
                   referenced_globals="608 / 627", fn_ptrs=1169,
                   target="Render", coverage_pct=99.02,
                   invocations=1, traffic_mb=20.3),
    fn_ptr_heavy=True,
)

_H264_SRC = r"""
/* 464.h264ref counterpart: motion-estimation encoder.  Frames stream in
   from a file inside encode_sequence (remote input); SAD kernels are
   dispatched through a function-pointer table. */
#define W 64
#define H 48
#define BLK 8

typedef int (*SADFN)(unsigned char*, unsigned char*, int, int);

unsigned char *cur;
unsigned char *ref;
int *mvx; int *mvy;
int nframes;

int sad_full(unsigned char *a, unsigned char *b, int ox, int oy) {
    int x, y, s = 0;
    for (y = 0; y < BLK; y++) {
        for (x = 0; x < BLK; x++) {
            int ia = a[y * W + x];
            int ib = b[(y + oy) * W + x + ox];
            s += ia > ib ? ia - ib : ib - ia;
        }
    }
    return s;
}

int sad_sub2(unsigned char *a, unsigned char *b, int ox, int oy) {
    int x, y, s = 0;
    for (y = 0; y < BLK; y += 2) {
        for (x = 0; x < BLK; x += 2) {
            int ia = a[y * W + x];
            int ib = b[(y + oy) * W + x + ox];
            s += ia > ib ? ia - ib : ib - ia;
        }
    }
    return s * 4;
}

SADFN sad_table[2] = { sad_full, sad_sub2 };

int encode_sequence(void *video) {
    int f, total_bits = 0;
    for (f = 0; f < nframes; f++) {
        int by, bx;
        /* stream the next frame from the mobile device's file */
        int got = (int) fread(cur, 1, W * H, video);
        if (got < W * H) break;
        for (by = 0; by + BLK <= H - 2; by += BLK) {
            for (bx = 0; bx + BLK <= W - 2; bx += BLK) {
                int best = 1 << 30;
                int dx, dy, bestdx = 0, bestdy = 0;
                unsigned char *blk = cur + by * W + bx;
                unsigned char *rblk = ref + by * W + bx;
                for (dy = 0; dy <= 2; dy++) {
                    for (dx = 0; dx <= 2; dx++) {
                        SADFN sad = sad_table[(dx + dy) & 1];
                        int s = sad(blk, rblk, dx, dy);
                        if (s < best) { best = s; bestdx = dx; bestdy = dy; }
                    }
                }
                mvx[(by / BLK) * (W / BLK) + bx / BLK] = bestdx;
                mvy[(by / BLK) * (W / BLK) + bx / BLK] = bestdy;
                total_bits += best / 4 + 6;
            }
        }
        memcpy(ref, cur, W * H);
        printf("frame %d bits %d\n", f, total_bits);
    }
    return total_bits;
}

int main() {
    void *v;
    int i, bits;
    scanf("%d", &nframes);
    cur = (unsigned char*) malloc(W * H + 4 * W);
    ref = (unsigned char*) malloc(W * H + 4 * W);
    mvx = (int*) malloc((W / BLK) * (H / BLK) * sizeof(int));
    mvy = (int*) malloc((W / BLK) * (H / BLK) * sizeof(int));
    for (i = 0; i < W * H; i++) ref[i] = (unsigned char)(i % 200);
    v = fopen("video.yuv", "r");
    if (!v) { printf("no video\n"); return 1; }
    bits = encode_sequence(v);
    fclose(v);
    printf("total bits %d\n", bits);
    return 0;
}
"""


def _video_frames(n: int) -> bytes:
    w, h = 64, 48
    out = bytearray()
    for f in range(n):
        for i in range(w * h):
            out.append((i * 3 + f * 17 + (i // w) * 5) % 251)
    return bytes(out)


H264REF = WorkloadSpec(
    name="464.h264ref",
    description="Video encoder (motion estimation, SAD fn-ptr kernels)",
    source=_H264_SRC,
    profile_stdin=b"1\n",
    eval_stdin=b"2\n",
    profile_files={"video.yuv": _video_frames(1)},
    eval_files={"video.yuv": _video_frames(2)},
    paper=PaperRow(loc="59.5k", exec_time_s=78.2,
                   offloaded_functions="48 / 1333",
                   referenced_globals="2012 / 2822", fn_ptrs=457,
                   target="encode_sequence", coverage_pct=99.79,
                   invocations=1, traffic_mb=17.1),
    remote_input_heavy=True,
    fn_ptr_heavy=True,
)

_SPHINX_SRC = r"""
/* 482.sphinx3 counterpart: GMM scoring of streamed feature frames; the
   offload target is the utterance loop in main. */
#define DIMS 12
#define SENONES 32

double *means;     /* SENONES x DIMS */
double *variances;
double *frame;
int nframes;

double score_senone(int s) {
    double acc = 0.0;
    int d;
    for (d = 0; d < DIMS; d++) {
        double diff = frame[d] - means[s * DIMS + d];
        acc += diff * diff * variances[s * DIMS + d];
    }
    return -acc;
}

int main() {
    void *feat;
    int f, i, s;
    int hits = 0;
    unsigned char raw[DIMS];
    scanf("%d", &nframes);
    means = (double*) malloc(SENONES * DIMS * sizeof(double));
    variances = (double*) malloc(SENONES * DIMS * sizeof(double));
    frame = (double*) malloc(DIMS * sizeof(double));
    for (i = 0; i < SENONES * DIMS; i++) {
        means[i] = (double)((i * 2654435761u >> 18) % 256) / 16.0;
        variances[i] = 0.5 + (double)(i % 13) / 13.0;
    }
    feat = fopen("feat.bin", "r");
    if (!feat) { printf("no features\n"); return 1; }
    for (f = 0; f < nframes; f++) {
        double best = -1.0e30;
        int best_s = -1;
        int got = (int) fread(raw, 1, DIMS, feat);
        if (got < DIMS) break;
        for (i = 0; i < DIMS; i++) frame[i] = (double)raw[i] / 16.0;
        for (s = 0; s < SENONES; s++) {
            double sc = score_senone(s);
            if (sc > best) { best = sc; best_s = s; }
        }
        if (best_s % 3 == 0) hits++;
        if (f % 25 == 0) printf("frame %d senone %d\n", f, best_s);
    }
    fclose(feat);
    printf("recognized %d keyframes\n", hits);
    return 0;
}
"""


def _feat_file(n: int) -> bytes:
    dims = 12
    out = bytearray()
    for f in range(n):
        for d in range(dims):
            out.append((f * 31 + d * 7 + (f * d) % 5) % 256)
    return bytes(out)


SPHINX3 = WorkloadSpec(
    name="482.sphinx3",
    description="Speech recognition (GMM senone scoring over features)",
    source=_SPHINX_SRC,
    profile_stdin=b"40\n",
    eval_stdin=b"80\n",
    profile_files={"feat.bin": _feat_file(40)},
    eval_files={"feat.bin": _feat_file(80)},
    paper=PaperRow(loc="13.1k", exec_time_s=375.2,
                   offloaded_functions="124 / 370",
                   referenced_globals="1265 / 1329", fn_ptrs=14,
                   target="main_for.cond", coverage_pct=98.39,
                   invocations=1, traffic_mb=34.0),
    remote_input_heavy=True,
)
