"""Compression workloads: 164.gzip and 401.bzip2.

Both are the paper's canonical *communication-heavy* programs: the offload
target (``spec_compress``) touches the whole input and output buffers, so
traffic per invocation is large relative to compute (151.5 MB and 134.3 MB
in Table 4).  On the slow network the dynamic estimator declines to offload
them (the ``*`` entries of Figure 6), and 164.gzip is the one program whose
battery consumption *rises* under offloading.
"""

from .base import PaperRow, WorkloadSpec

_GZIP_SRC = r"""
/* 164.gzip counterpart: greedy LZ77 with a small hash chain. */
#define HASH_SIZE 4096
#define MIN_MATCH 3
#define MAX_MATCH 32

unsigned char *inbuf;
unsigned char *outbuf;
int *hash_head;
int *posmeta;      /* per-position dictionary metadata (16 ints/byte) */
int input_size;
unsigned int gen_state;

unsigned int next_rand() {
    gen_state = gen_state * 1103515245 + 12345;
    return (gen_state >> 16) & 32767;
}

void gen_input(int n) {
    int *words = (int*) inbuf;
    int i;
    for (i = 0; i < n / 4; i++) {
        unsigned int r = next_rand();
        /* runs of repeated bytes with occasional noise */
        words[i] = (int)(((r % 37) * 0x01010101u) ^ ((r >> 9) & 0xFF));
    }
}

int hash_of(int pos) {
    int h = (inbuf[pos] << 5) ^ (inbuf[pos + 1] << 3) ^ inbuf[pos + 2];
    return h & (HASH_SIZE - 1);
}

int spec_compress(int n) {
    int pos = 0;
    int out = 0;
    int i;
    for (i = 0; i < HASH_SIZE; i++) hash_head[i] = -1;
    while (pos < n - MIN_MATCH) {
        int h = hash_of(pos);
        int cand = hash_head[h];
        int best_len = 0;
        int *meta = posmeta + pos * 16;
        if (cand >= 0 && pos - cand < 8192) {
            int len = 0;
            while (len < MAX_MATCH && pos + len < n
                   && inbuf[cand + len] == inbuf[pos + len]) {
                len++;
            }
            if (len >= MIN_MATCH) best_len = len;
        }
        hash_head[h] = pos;
        meta[0] = cand;
        meta[1] = best_len;
        meta[2] = h;
        meta[3] = out;
        if (best_len >= MIN_MATCH) {
            outbuf[out] = 255;
            outbuf[out + 1] = (unsigned char)(best_len);
            outbuf[out + 2] = (unsigned char)((pos - cand) & 255);
            outbuf[out + 3] = (unsigned char)(((pos - cand) >> 8) & 255);
            out += 4;
            pos += best_len;
        } else {
            outbuf[out] = inbuf[pos];
            out++;
            pos++;
        }
    }
    while (pos < n) {
        outbuf[out] = inbuf[pos];
        out++;
        pos++;
    }
    return out;
}

int checksum(unsigned char *buf, int n) {
    int s1 = 1, s2 = 0, i;
    for (i = 0; i < n; i += 2) {
        s1 = s1 + buf[i];
        if (s1 >= 65521) s1 -= 65521;
        s2 = s2 + s1;
        if (s2 >= 65521) s2 -= 65521;
    }
    return (s2 << 16) | s1;
}

int main() {
    int n, out_size;
    scanf("%d", &n);
    input_size = n;
    gen_state = 12345;
    inbuf = (unsigned char*) malloc(n + MAX_MATCH);
    outbuf = (unsigned char*) malloc(n + n / 2 + 64);
    hash_head = (int*) malloc(HASH_SIZE * sizeof(int));
    posmeta = (int*) malloc(n * 16 * sizeof(int));
    gen_input(n);
    out_size = spec_compress(n);
    printf("in %d out %d ratio %d%%\n", n, out_size,
           out_size * 100 / n);
    printf("crc %d\n", checksum(outbuf, out_size));
    return 0;
}
"""

GZIP = WorkloadSpec(
    name="164.gzip",
    description="Compression (greedy LZ77, hash-chain match search)",
    source=_GZIP_SRC,
    profile_stdin=b"8192\n",
    eval_stdin=b"16384\n",
    paper=PaperRow(loc="5.5k", exec_time_s=15.3,
                   offloaded_functions="20 / 89",
                   referenced_globals="141 / 241", fn_ptrs=9,
                   target="spec_compress", coverage_pct=98.90,
                   invocations=1, traffic_mb=151.5),
    expect_offload_slow=False,
    comm_heavy=True,
)

_BZIP2_SRC = r"""
/* 401.bzip2 counterpart: Burrows-Wheeler-flavoured block transform:
   bucket sort on 2-byte prefixes + move-to-front + RLE. */
#define BLOCK 8192

unsigned char *inbuf;
unsigned char *workbuf;
unsigned char *outbuf;
int *bucket;
unsigned int gen_state;

unsigned int next_rand() {
    gen_state = gen_state * 69069 + 1;
    return (gen_state >> 16) & 32767;
}

void gen_input(int n) {
    int *words = (int*) inbuf;
    int i;
    for (i = 0; i < n / 4; i++) {
        unsigned int r = next_rand();
        int c = 'a' + (i / 2) % 9;
        words[i] = (int)((c * 0x01010101u)
                         ^ (r % 16 == 0 ? (r & 0x07070707) : 0));
    }
}

void mtf_block(unsigned char *src, unsigned char *dst, int n) {
    unsigned char order[256];
    int i, j;
    for (i = 0; i < 256; i++) order[i] = (unsigned char)i;
    for (i = 0; i < n; i++) {
        unsigned char c = src[i];
        j = 0;
        while (order[j] != c) j++;
        dst[i] = (unsigned char)j;
        while (j > 0) {
            order[j] = order[j - 1];
            j--;
        }
        order[0] = c;
    }
}

int spec_compress(int n) {
    int out = 0;
    int start;
    for (start = 0; start < n; start += BLOCK) {
        int len = n - start;
        int i;
        if (len > BLOCK) len = BLOCK;
        /* bucket sort rotation keys (a stand-in for the BWT sort);
           the table covers 18-bit keys, like bzip2's quadrant arrays */
        memset(bucket, 0, 262144 * sizeof(int));
        for (i = 0; i < len - 1; i++) {
            int key = ((inbuf[start + i] << 8) | inbuf[start + i + 1])
                      << 2;
            bucket[key + (i & 3)]++;
        }
        mtf_block(inbuf + start, workbuf, len);
        /* RLE of the MTF output */
        i = 0;
        while (i < len) {
            int run = 1;
            while (i + run < len && workbuf[i + run] == workbuf[i]
                   && run < 255) {
                run++;
            }
            outbuf[out] = workbuf[i];
            outbuf[out + 1] = (unsigned char)run;
            out += 2;
            i += run;
        }
    }
    return out;
}

int main() {
    int n, out_size, i, acc;
    scanf("%d", &n);
    gen_state = 777;
    inbuf = (unsigned char*) malloc(n + 2);
    workbuf = (unsigned char*) malloc(BLOCK + 2);
    outbuf = (unsigned char*) malloc(2 * n + 16);
    bucket = (int*) malloc(262144 * sizeof(int));
    gen_input(n);
    out_size = spec_compress(n);
    acc = 0;
    for (i = 0; i < out_size; i++) acc = (acc * 31 + outbuf[i]) % 1000003;
    printf("blocksort %d -> %d hash %d\n", n, out_size, acc);
    return 0;
}
"""

BZIP2 = WorkloadSpec(
    name="401.bzip2",
    description="Compression (block transform + MTF + RLE)",
    source=_BZIP2_SRC,
    profile_stdin=b"4096\n",
    eval_stdin=b"8192\n",
    paper=PaperRow(loc="5.7k", exec_time_s=27.0,
                   offloaded_functions="58 / 100",
                   referenced_globals="95 / 120", fn_ptrs=24,
                   target="spec_compress", coverage_pct=98.79,
                   invocations=1, traffic_mb=134.3),
    expect_offload_slow=False,
    comm_heavy=True,
)
