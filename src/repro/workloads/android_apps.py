"""Table 2 dataset: native-code share of the top 20 open-source Android
applications.

The paper measured lines of C/C++ versus total lines, and the share of
execution time spent in native code under a described runtime behaviour,
for the top-20 F-Droid applications.  The survey itself is data, not an
algorithm; this module carries the dataset and the derived statistics the
paper quotes ("around one third of the 20 applications include native
codes more than 50% and spend more than 20% of the total execution time to
execute them").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass(frozen=True)
class AndroidApp:
    name: str
    version: str
    description: str
    c_cpp_loc: int
    total_loc: int
    runtime_description: str
    native_exec_ratio_pct: float   # share of execution time in native code

    @property
    def native_loc_ratio_pct(self) -> float:
        if self.total_loc == 0:
            return 0.0
        return 100.0 * self.c_cpp_loc / self.total_loc


# Table 2 of the paper, verbatim.
TOP20_APPS: List[AndroidApp] = [
    AndroidApp("AdAway", "3.0.2", "AD blocker", 132_882, 310_321,
               "Read articles with ads", 21.54),
    AndroidApp("Orbot", "14.1.4-noPIE", "Tor client", 675_851, 969_243,
               "Web browsing with Tor", 61.98),
    AndroidApp("Firefox", "40.0", "Web browser", 8_094_678, 15_509_820,
               "Web browsing 4 websites", 88.27),
    AndroidApp("VLC Player", "1.5.1.1", "Media player", 3_584_526,
               6_433_726, "Play a movie w/o HW decoder", 92.34),
    AndroidApp("Open Camera", "1.2", "Camera", 0, 10_336, "N/A", 0.0),
    AndroidApp("osmAnd", "2.1.1", "Map/Navigation", 53_695, 450_573,
               "Search nearby places", 23.86),
    AndroidApp("Syncthing", "0.5.0-beta5", "File synchronizer", 0, 59_461,
               "N/A", 0.0),
    AndroidApp("AFWall+", "1.3.4.1", "Network traffic controller", 1_514,
               59_741, "Web browsing 4 websites", 0.30),
    AndroidApp("2048", "1.95", "Puzzle game", 0, 2_232, "N/A", 0.0),
    AndroidApp("K-9 Mail", "4.804", "Email client", 0, 96_588, "N/A", 0.0),
    AndroidApp("PDF Reader", "0.4.0", "PDF viewer", 334_489, 594_434,
               "Read a book with zoom", 28.30),
    AndroidApp("ownCloud", "1.5.8", "File synchronizer", 0, 77_141,
               "N/A", 0.0),
    AndroidApp("DAVdroid", "0.6.2", "Private data synchronizer", 0, 7_435,
               "N/A", 0.0),
    AndroidApp("Barcode Scanner", "4.7.0", "2D/QR code scanner", 0,
               50_201, "N/A", 0.0),
    AndroidApp("SatStat", "2", "Sensor status monitor", 0, 7_480,
               "N/A", 0.0),
    AndroidApp("Cool Reader", "3.1.2-72", "Ebook reader", 491_556,
               681_001, "Read a book", 97.73),
    AndroidApp("OS Monitor", "3.4.1.0", "OS monitor", 5_902, 74_513,
               "Read network and process info.", 4.38),
    AndroidApp("Orweb", "0.6.1", "Web browser", 0, 14_124, "N/A", 0.0),
    AndroidApp("PPSSPP", "1.0.1.0", "PSP emulator", 1_304_973, 1_438_322,
               "Play a game for 1 minute", 97.68),
    AndroidApp("Adblock Plus", "1.1.3", "AD blocker", 2_102, 63_779,
               "Read articles with ads", 22.83),
]

# The VLC row has a second runtime behaviour in the paper.
VLC_HW_DECODER_RATIO_PCT = 23.05


def apps_with_majority_native_code(
        apps: Optional[List[AndroidApp]] = None) -> List[AndroidApp]:
    """Apps whose C/C++ line share exceeds 50%."""
    apps = TOP20_APPS if apps is None else apps
    return [a for a in apps if a.native_loc_ratio_pct > 50.0]


def apps_with_heavy_native_runtime(
        apps: Optional[List[AndroidApp]] = None,
        threshold_pct: float = 20.0) -> List[AndroidApp]:
    """Apps spending more than ``threshold_pct`` of execution natively."""
    apps = TOP20_APPS if apps is None else apps
    return [a for a in apps if a.native_exec_ratio_pct > threshold_pct]


def survey_summary() -> dict:
    """The paper's headline claim about Table 2: roughly a third of the
    apps are >50% native code and spend >20% of their time in it."""
    majority = apps_with_majority_native_code()
    heavy = apps_with_heavy_native_runtime()
    both = [a for a in majority if a in heavy]
    return {
        "total_apps": len(TOP20_APPS),
        "majority_native_loc": len(majority),
        "heavy_native_runtime": len(heavy),
        "both": len(both),
        "fraction_both": len(both) / len(TOP20_APPS),
    }
