"""The chess game application of the paper's running example.

This is the program behind Table 1 (the 5-6x smartphone/desktop gap across
difficulty levels), Figure 3 (the compiler transformation example) and
Table 3 (profiling + Equation 1 numbers).  It follows Figure 3(a)'s
structure: an interactive ``runGame`` loop (scanf-bound, so machine
specific), an offloadable ``getAITurn`` with a function-pointer evaluation
table, and board state in UVA-destined globals.
"""

from .base import PaperRow, WorkloadSpec

CHESS_SRC = r"""
/* The paper's Figure 3 chess game, fleshed out into a runnable program. */
#define BOARD 64

typedef struct { char from, to; double score; } Move;
typedef struct { char loc, owner, type; } Piece;
typedef double (*EVALFUNC)(Piece);

int maxDepth;
Piece *board;
unsigned int rng;

unsigned int c_rand() {
    rng = rng * 1103515245 + 12345;
    return (rng >> 12) & 0x7FFF;
}

double evalPawn(Piece p)   { return 1.0 + (p.loc / 8) * 0.05; }
double evalKnight(Piece p) { int c = p.loc % 8; return 3.0 + (c > 1 && c < 6 ? 0.2 : 0.0); }
double evalBishop(Piece p) { return 3.1 + ((p.loc / 8 + p.loc % 8) % 2) * 0.1; }
double evalRook(Piece p)   { return 5.0; }
double evalQueen(Piece p)  { return 9.0; }
double evalKing(Piece p)   { return 200.0 - (p.loc / 8) * 0.01; }
double evalEmpty(Piece p)  { return 0.0; }

EVALFUNC evals[7] = { evalEmpty, evalPawn, evalKnight, evalBishop,
                      evalRook, evalQueen, evalKing };

double positionScore(void) {
    double s = 0.0;
    int j;
    for (j = 0; j < BOARD; j++) {
        char pieceType = board[j].type;
        EVALFUNC eval = evals[pieceType];
        double v = eval(board[j]);
        s += board[j].owner == 1 ? v : -v;
    }
    return s;
}

double searchMove(int depth, double alpha) {
    int m;
    double best = -100000.0;
    if (depth == 0) return positionScore();
    for (m = 0; m < 4; m++) {
        int from = (int)(c_rand() % BOARD);
        int to = (int)(c_rand() % BOARD);
        char savedType; char savedOwner; double s;
        if (!board[from].owner) continue;
        savedType = board[to].type; savedOwner = board[to].owner;
        board[to].type = board[from].type;
        board[to].owner = board[from].owner;
        board[from].owner = 0;
        s = -searchMove(depth - 1, -alpha);
        board[from].owner = board[to].owner;
        board[to].type = savedType; board[to].owner = savedOwner;
        if (s > best) best = s;
        if (best > alpha) alpha = best;
    }
    return best;
}

Move getAITurn() {
    Move mv;
    int i;
    mv.from = 0; mv.to = 0; mv.score = 0.0;
    for (i = 1; i <= maxDepth; i++) {
        mv.score += searchMove(i, -100000.0);
        mv.from = (char)(c_rand() % BOARD);
        mv.to = (char)(c_rand() % BOARD);
        printf("%lf\n", mv.score);
    }
    return mv;
}

Move getPlayerTurn() {
    Move mv;
    int f, t;
    scanf("%d %d", &f, &t);
    mv.from = (char)f; mv.to = (char)t; mv.score = 0.0;
    return mv;
}

void updateBoard(Move mv) {
    int f = mv.from % BOARD;
    int t = mv.to % BOARD;
    if (board[f].owner) {
        board[t].type = board[f].type;
        board[t].owner = board[f].owner;
        board[f].owner = 0;
    }
}

void runGame(int turns) {
    int turn;
    for (turn = 0; turn < turns; turn++) {
        Move mv;
        mv = getPlayerTurn();
        updateBoard(mv);
        mv = getAITurn();
        updateBoard(mv);
        printf("turn %d score %lf\n", turn, mv.score);
    }
}

int main() {
    int j, turns;
    scanf("%d %d", &maxDepth, &turns);
    rng = 20151205;
    board = (Piece*) malloc(sizeof(Piece) * BOARD);
    for (j = 0; j < BOARD; j++) {
        board[j].loc = (char)j;
        board[j].owner = (char)(j < 16 ? 1 : (j >= 48 ? 2 : 0));
        board[j].type = (char)(j < 16 || j >= 48 ? 1 + j % 6 : 0);
    }
    runGame(turns);
    return 0;
}
"""


def chess_stdin(depth: int, turns: int) -> bytes:
    """stdin for a chess run: difficulty + per-turn player moves."""
    moves = "\n".join(f"{(8 + 3 * t) % 64} {(24 + 5 * t) % 64}"
                      for t in range(turns))
    return f"{depth} {turns}\n{moves}\n".encode()


CHESS = WorkloadSpec(
    name="chess",
    description="The paper's running-example chess game (Figure 3)",
    source=CHESS_SRC,
    profile_stdin=chess_stdin(depth=4, turns=1),
    eval_stdin=chess_stdin(depth=5, turns=3),
    paper=PaperRow(target="getAITurn"),
)
