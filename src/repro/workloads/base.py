"""Workload infrastructure.

Each evaluated program is a :class:`WorkloadSpec`: a mini-C source, a
profiling input and a (larger) evaluation input — the paper stresses that
profiling and evaluation use *different* inputs — plus the paper's Table 4
row for side-by-side reporting in EXPERIMENTS.md.

The programs are scaled-down counterparts of the paper's SPEC CPU2000/2006
C benchmarks.  Each one reproduces the *structure* its original exhibits in
Table 4: which function/loop becomes the offload target, how often it is
invoked, whether it leans on function pointers, remote file input, or bulk
data traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..frontend.driver import compile_c
from ..ir.module import Module
from ..targets.arch import TargetArch
from ..targets.presets import ARM32


@dataclass
class PaperRow:
    """The original program's Table 4 row (for reporting only)."""

    loc: str = ""
    exec_time_s: float = 0.0
    offloaded_functions: str = ""
    referenced_globals: str = ""
    fn_ptrs: int = 0
    target: str = ""
    coverage_pct: float = 0.0
    invocations: int = 0
    traffic_mb: float = 0.0


@dataclass
class WorkloadSpec:
    name: str
    description: str
    source: str
    profile_stdin: bytes = b""
    eval_stdin: bytes = b""
    profile_files: Dict[str, bytes] = field(default_factory=dict)
    eval_files: Dict[str, bytes] = field(default_factory=dict)
    # The target the paper reports for the original program.
    paper: PaperRow = field(default_factory=PaperRow)
    # Expected behaviours used by tests and EXPERIMENTS.md commentary.
    expect_offload_slow: bool = True     # offloaded on the slow network?
    comm_heavy: bool = False             # gzip/bzip2/mcf/lbm class
    remote_input_heavy: bool = False     # twolf/gobmk/h264 class
    fn_ptr_heavy: bool = False           # gobmk/sjeng/h264 class
    _module_cache: Dict[str, Module] = field(default_factory=dict,
                                             repr=False)

    @property
    def loc(self) -> int:
        return self.source.count("\n") + 1

    def module(self, target: TargetArch = ARM32) -> Module:
        """Compile (cached per target) the workload to IR."""
        cached = self._module_cache.get(target.name)
        if cached is None:
            cached = compile_c(self.source, self.name, target=target)
            self._module_cache[target.name] = cached
        # Hand out clones so callers can transform freely.
        return cached.clone()
