"""Sequence/number-theory workloads: 456.hmmer and 462.libquantum.

456.hmmer is the paper's best-behaved offload: the target takes "only the
initialized parameters as its inputs", allocates its working set on the
server side, and communicates almost nothing (0.3 MB in Table 4).
462.libquantum references *zero* globals (0 / 44) — all state flows through
parameters — and computes long modular-exponentiation chains.
"""

from .base import PaperRow, WorkloadSpec

_HMMER_SRC = r"""
/* 456.hmmer counterpart: profile-HMM Viterbi search over a synthetic
   sequence database.  The DP matrices are allocated inside the target, so
   they never cross the network. */
#define MODEL 24
#define SEQLEN 60

int *hmm_match;     /* MODEL emission scores x 4 symbols */
int *hmm_insert;
int nseqs;

int viterbi_score(unsigned char *seq, int len, int *dp_cur, int *dp_prev) {
    int i, k;
    for (k = 0; k <= MODEL; k++) dp_prev[k] = k == 0 ? 0 : -100000;
    for (i = 1; i <= len; i++) {
        int sym = seq[i - 1] & 3;
        dp_cur[0] = -i * 3;
        for (k = 1; k <= MODEL; k++) {
            int diag = dp_prev[k - 1] + hmm_match[(k - 1) * 4 + sym];
            int up = dp_prev[k] + hmm_insert[(k - 1) * 4 + sym] - 4;
            int left = dp_cur[k - 1] - 9;
            int best = diag;
            if (up > best) best = up;
            if (left > best) best = left;
            dp_cur[k] = best;
        }
        for (k = 0; k <= MODEL; k++) dp_prev[k] = dp_cur[k];
    }
    return dp_prev[MODEL];
}

int main_loop_serial(void) {
    unsigned char seq[SEQLEN];
    int *dp_cur;
    int *dp_prev;
    unsigned int rng = 1234;
    int s, i, hits = 0;
    dp_cur = (int*) malloc((MODEL + 1) * sizeof(int));
    dp_prev = (int*) malloc((MODEL + 1) * sizeof(int));
    for (s = 0; s < nseqs; s++) {
        int score;
        for (i = 0; i < SEQLEN; i++) {
            rng = rng * 1103515245 + 12345;
            seq[i] = (unsigned char)((rng >> 16) & 3);
        }
        score = viterbi_score(seq, SEQLEN, dp_cur, dp_prev);
        if (score > -200) hits++;
    }
    free(dp_cur);
    free(dp_prev);
    printf("db hits %d / %d\n", hits, nseqs);
    return hits;
}

int main() {
    int i, hits;
    scanf("%d", &nseqs);
    hmm_match = (int*) malloc(MODEL * 4 * sizeof(int));
    hmm_insert = (int*) malloc(MODEL * 4 * sizeof(int));
    for (i = 0; i < MODEL * 4; i++) {
        hmm_match[i] = (i * 7919) % 11 - 3;
        hmm_insert[i] = (i * 104729) % 7 - 4;
    }
    hits = main_loop_serial();
    printf("search done: %d hits\n", hits);
    return 0;
}
"""

HMMER = WorkloadSpec(
    name="456.hmmer",
    description="Gene sequence search (profile-HMM Viterbi)",
    source=_HMMER_SRC,
    profile_stdin=b"4\n",
    eval_stdin=b"8\n",
    paper=PaperRow(loc="20.6k", exec_time_s=31.3,
                   offloaded_functions="36 / 538",
                   referenced_globals="995 / 1050", fn_ptrs=36,
                   target="main_loop_serial", coverage_pct=99.99,
                   invocations=1, traffic_mb=0.3),
)

_LIBQUANTUM_SRC = r"""
/* 462.libquantum counterpart: Shor-style modular exponentiation over a
   simulated quantum register.  All state lives in locals/parameters (the
   original references no globals at all). */

unsigned long mulmod(unsigned long a, unsigned long b, unsigned long m) {
    unsigned long r = 0;
    while (b) {
        if (b & 1) r = (r + a) % m;
        a = (a + a) % m;
        b = b >> 1;
    }
    return r;
}

unsigned long quantum_exp_mod_n(unsigned long base, unsigned long n,
                                int width, int reps) {
    unsigned long acc = 0;
    int r, bit;
    for (r = 0; r < reps; r++) {
        unsigned long result = 1;
        unsigned long b = (base + r) % n;
        if (b < 2) b = 2;
        for (bit = 0; bit < width; bit++) {
            result = mulmod(result, result, n);
            if ((r >> (bit % 16)) & 1) {
                result = mulmod(result, b, n);
            }
        }
        acc = (acc + result) % n;
    }
    return acc;
}

int main() {
    int width, reps;
    unsigned long n, base, answer;
    scanf("%d %d %lu %lu", &width, &reps, &n, &base);
    answer = quantum_exp_mod_n(base, n, width, reps);
    printf("exp_mod residue %lu\n", answer);
    return 0;
}
"""

LIBQUANTUM = WorkloadSpec(
    name="462.libquantum",
    description="Quantum computing (modular exponentiation chains)",
    source=_LIBQUANTUM_SRC,
    profile_stdin=b"30 25 1000003 7\n",
    eval_stdin=b"30 50 1000003 7\n",
    paper=PaperRow(loc="2.6k", exec_time_s=71.0,
                   offloaded_functions="62 / 116",
                   referenced_globals="0 / 44", fn_ptrs=0,
                   target="quantum_exp_mod_n", coverage_pct=92.56,
                   invocations=1, traffic_mb=6.3),
)
