"""Game AI workloads: 445.gobmk and 458.sjeng.

Both are the paper's *function-pointer-heavy* programs: gobmk dispatches
GTP commands through a ``commands`` table and sjeng evaluates pieces
through ``evalRoutines``, so the server pays a mapping lookup on a huge
number of indirect calls (Figure 7).  gobmk additionally reads previous
play records from files inside the offloaded region (remote input), which
keeps its radio busy for the whole offload (Figure 8(b)/(c)).  sjeng's
``think`` runs once per user move — three invocations, each shipping the
game state, and still profitable even on the slow network.
"""

from .base import PaperRow, WorkloadSpec

_GOBMK_SRC = r"""
/* 445.gobmk counterpart: GTP command loop over a go board.  Commands are
   dispatched through a function-pointer table and replay records are read
   from a file inside the offloaded gtp_main_loop. */
#define BOARD 13
#define CELLS 169

int *board;      /* 0 empty, 1 black, 2 white */
int *influence;
unsigned int rng;

typedef int (*GTPCMD)(int);

unsigned int g_rand() {
    rng = rng * 1664525 + 1013904223;
    return (rng >> 9) & 0x3FFF;
}

int influence_at(int pos) {
    int x = pos % BOARD, y = pos / BOARD;
    int i, acc = 0;
    for (i = 0; i < CELLS; i++) {
        int xi = i % BOARD, yi = i / BOARD;
        int dx = x - xi, dy = y - yi;
        int d2 = dx * dx + dy * dy;
        if (board[i] == 1) acc += 64 / (d2 + 1);
        if (board[i] == 2) acc -= 64 / (d2 + 1);
    }
    return acc;
}

int cmd_genmove(int color) {
    int best = -1, best_score = -100000;
    int tries, pos;
    for (tries = 0; tries < 6; tries++) {
        pos = (int)(g_rand() % CELLS);
        if (board[pos] == 0) {
            int inf = influence_at(pos);
            int score = color == 1 ? inf : -inf;
            if (score > best_score) { best_score = score; best = pos; }
        }
    }
    if (best >= 0) board[best] = color;
    return best;
}

int cmd_estimate_score(int unused) {
    int i, score = 0;
    for (i = 0; i < CELLS; i += 16) influence[i] = influence_at(i);
    for (i = 0; i < CELLS; i += 16) score += influence[i] > 0 ? 1 : -1;
    return score;
}

int cmd_play_record(int pos) {
    if (pos >= 0 && pos < CELLS && board[pos] == 0) {
        board[pos] = 1 + (pos % 2);
        return pos;
    }
    return -1;
}

GTPCMD commands[3] = { cmd_genmove, cmd_estimate_score, cmd_play_record };

int gtp_main_loop(void *records) {
    char line[96];
    int processed = 0;
    int final_score = 0;
    while (fgets(line, 96, records)) {
        int op = atoi(line);
        int arg = op / 10;
        GTPCMD cmd = commands[op % 3];
        final_score = cmd(arg % CELLS + 1);
        processed++;
        if (processed % 8 == 0)
            printf("cmd %d result %d\n", processed, final_score);
    }
    return final_score;
}

int main() {
    void *f;
    int i, score;
    board = (int*) malloc(CELLS * sizeof(int));
    influence = (int*) malloc(CELLS * sizeof(int));
    rng = 2025;
    for (i = 0; i < CELLS; i++) board[i] = 0;
    for (i = 0; i < 40; i++) board[(int)(g_rand() % CELLS)] = 1 + (i % 2);
    f = fopen("games.rec", "r");
    if (!f) { printf("no record file\n"); return 1; }
    score = gtp_main_loop(f);
    fclose(f);
    printf("final score %d\n", score);
    return 0;
}
"""


def _gobmk_records(n: int) -> bytes:
    lines = []
    for i in range(n):
        op = (i * 7 + 3) % 30
        kind = 1 if i % 9 == 4 else (i % 2) * 2   # mostly genmove/play
        lines.append(str(op * 10 + kind))
    return ("\n".join(lines) + "\n").encode()


GOBMK = WorkloadSpec(
    name="445.gobmk",
    description="Go game engine (GTP command loop, influence function)",
    source=_GOBMK_SRC,
    profile_stdin=b"",
    eval_stdin=b"",
    profile_files={"games.rec": _gobmk_records(14)},
    eval_files={"games.rec": _gobmk_records(26)},
    paper=PaperRow(loc="156.3k", exec_time_s=361.8,
                   offloaded_functions="6 / 2679",
                   referenced_globals="21844 / 22090", fn_ptrs=77,
                   target="gtp_main_loop", coverage_pct=99.96,
                   invocations=1, traffic_mb=25.7),
    remote_input_heavy=True,
    fn_ptr_heavy=True,
)

_SJENG_SRC = r"""
/* 458.sjeng counterpart: chess engine.  The user plays a move, think()
   searches; piece evaluation dispatches through evalRoutines. */
#define SQUARES 64
#define MAXPLY 3

int *boardstate;     /* piece codes 0..6, sign via owner array */
int *owner;          /* 0 none, 1 us, 2 them */
int *history;        /* search history heuristic table */
unsigned int rng;
int nodes_budget;

typedef int (*EVALFN)(int);

unsigned int s_rand() {
    rng = rng * 69069 + 5;
    return (rng >> 8) & 0x7FFF;
}

int eval_pawn(int sq)   { return 100 + (sq / 8) * 4; }
int eval_knight(int sq) { int c = sq % 8; return 300 + (c > 1 && c < 6 ? 12 : 0); }
int eval_bishop(int sq) { return 310 + ((sq / 8 + sq % 8) % 2) * 6; }
int eval_rook(int sq)   { return 500 + (sq / 8 == 6 ? 20 : 0); }
int eval_queen(int sq)  { return 900; }
int eval_king(int sq)   { return 10000 - (sq / 8) * 2; }

EVALFN evalRoutines[6] = { eval_pawn, eval_knight, eval_bishop,
                           eval_rook, eval_queen, eval_king };

int evaluate(void) {
    int sq, score = 0;
    for (sq = 0; sq < SQUARES; sq++) {
        if (owner[sq]) {
            EVALFN fn = evalRoutines[boardstate[sq] % 6];
            int v = fn(sq);
            score += owner[sq] == 1 ? v : -v;
        }
    }
    return score;
}

int search(int ply, int alpha, int beta) {
    int moves, best;
    if (ply == 0) return evaluate();
    best = -999999;
    for (moves = 0; moves < 5; moves++) {
        int from = (int)(s_rand() % SQUARES);
        int to = (int)(s_rand() % SQUARES);
        int captured, was_owner, score;
        if (!owner[from]) continue;
        captured = boardstate[to]; was_owner = owner[to];
        boardstate[to] = boardstate[from]; owner[to] = owner[from];
        owner[from] = 0;
        score = -search(ply - 1, -beta, -alpha);
        history[(from * SQUARES + to) % 4096] += ply * ply;
        owner[from] = owner[to];
        boardstate[to] = captured; owner[to] = was_owner;
        if (score > best) best = score;
        if (best > alpha) alpha = best;
        if (alpha >= beta) break;
    }
    return best;
}

int think(void) {
    int iter, best = 0;
    for (iter = 0; iter < nodes_budget; iter++) {
        best = search(MAXPLY, -1000000, 1000000);
    }
    printf("bestline score %d\n", best);
    return best;
}

int main() {
    int i, turn, nturns;
    scanf("%d %d", &nturns, &nodes_budget);
    boardstate = (int*) malloc(SQUARES * sizeof(int));
    owner = (int*) malloc(SQUARES * sizeof(int));
    history = (int*) malloc(4096 * sizeof(int));
    rng = 4242;
    for (i = 0; i < SQUARES; i++) {
        boardstate[i] = i & 3;
        owner[i] = i < 16 ? 1 : (i >= 48 ? 2 : 0);
    }
    memset(history, 0, 4096 * sizeof(int));
    for (turn = 0; turn < nturns; turn++) {
        int from, to, score;
        scanf("%d %d", &from, &to);
        if (owner[from % SQUARES]) {
            boardstate[to % SQUARES] = boardstate[from % SQUARES];
            owner[to % SQUARES] = owner[from % SQUARES];
            owner[from % SQUARES] = 0;
        }
        score = think();
        printf("turn %d score %d\n", turn, score);
    }
    return 0;
}
"""

SJENG = WorkloadSpec(
    name="458.sjeng",
    description="Chess engine (alpha-beta search, eval fn-ptr table)",
    source=_SJENG_SRC,
    profile_stdin=b"1 8\n8 16\n",
    eval_stdin=b"3 12\n8 16\n12 20\n20 28\n",
    paper=PaperRow(loc="10.5k", exec_time_s=950.8,
                   offloaded_functions="91 / 144",
                   referenced_globals="495 / 624", fn_ptrs=1,
                   target="think", coverage_pct=99.95,
                   invocations=3, traffic_mb=240.2),
    fn_ptr_heavy=True,
)
