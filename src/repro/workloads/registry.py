"""Registry of all evaluated workloads, in the paper's Table 4 order."""

from __future__ import annotations

from typing import Dict, List

from .base import WorkloadSpec
from .compression import BZIP2, GZIP
from .scientific import AMMP, ART, EQUAKE, LBM, MILC
from .combinatorial import MCF, TWOLF, VPR
from .games import GOBMK, SJENG
from .media import H264REF, MESA, SPHINX3
from .sequence import HMMER, LIBQUANTUM
from .chess import CHESS

# The 17 SPEC programs of Table 4, in the paper's order.
SPEC_WORKLOADS: List[WorkloadSpec] = [
    GZIP, VPR, MESA, ART, EQUAKE, AMMP, TWOLF, BZIP2, MCF, MILC,
    GOBMK, HMMER, SJENG, LIBQUANTUM, H264REF, LBM, SPHINX3,
]

ALL_WORKLOADS: List[WorkloadSpec] = SPEC_WORKLOADS + [CHESS]

WORKLOADS: Dict[str, WorkloadSpec] = {w.name: w for w in ALL_WORKLOADS}


def workload(name: str) -> WorkloadSpec:
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(WORKLOADS)}"
        ) from None


def spec_names() -> List[str]:
    return [w.name for w in SPEC_WORKLOADS]
