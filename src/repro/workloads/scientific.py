"""Scientific-computing workloads: 179.art, 183.equake, 188.ammp,
433.milc and 470.lbm.

art / equake / ammp / milc are the paper's near-ideal offloading class:
long floating-point kernels over modest state.  470.lbm is the extreme
opposite on the communication axis — its whole lattice crosses the network
(643.6 MB per invocation in Table 4), so the slow network hurts badly.
183.equake and 470.lbm also exercise *loop* offloading: their targets are
``main_for.cond`` loops, not functions.
"""

from .base import PaperRow, WorkloadSpec

_ART_SRC = r"""
/* 179.art counterpart: adaptive-resonance-flavoured image recognition:
   match input patches against learned f64 prototype vectors. */
#define FEATS 32

double *prototypes;   /* numf2s x FEATS */
double *image;        /* patches x FEATS */
int numf2s;
int patches;
int winners[512];

double match_score(double *proto, double *vec) {
    double num = 0.0, den = 0.0;
    int i;
    for (i = 0; i < FEATS; i++) {
        double m = proto[i] < vec[i] ? proto[i] : vec[i];
        num += m;
        den += proto[i];
    }
    return num / (den + 0.8);
}

int scan_recognize(void) {
    int p, f, hits = 0;
    for (p = 0; p < patches; p++) {
        double best = -1.0;
        int best_f = -1;
        for (f = 0; f < numf2s; f++) {
            double s = match_score(prototypes + f * FEATS,
                                   image + p * FEATS);
            if (s > best) { best = s; best_f = f; }
        }
        winners[p % 512] = best_f;
        if (best > 0.55) {
            int i;
            double *proto = prototypes + best_f * FEATS;
            for (i = 0; i < FEATS; i++) {
                double m = proto[i] < image[p * FEATS + i]
                         ? proto[i] : image[p * FEATS + i];
                proto[i] = 0.9 * proto[i] + 0.1 * m;
            }
            hits++;
        }
    }
    return hits;
}

int main() {
    int i, hits;
    scanf("%d %d", &numf2s, &patches);
    prototypes = (double*) malloc(numf2s * FEATS * sizeof(double));
    image = (double*) malloc(patches * FEATS * sizeof(double));
    for (i = 0; i < numf2s * FEATS; i++)
        prototypes[i] = 0.3 + 0.4 * ((i * 2654435761u >> 16) % 100) / 100.0;
    for (i = 0; i < patches * FEATS; i++)
        image[i] = ((i * 40503u >> 8) % 1000) / 1000.0;
    hits = scan_recognize();
    printf("recognized %d of %d patches\n", hits, patches);
    return 0;
}
"""

ART = WorkloadSpec(
    name="179.art",
    description="Image recognition (adaptive resonance matching)",
    source=_ART_SRC,
    profile_stdin=b"8 40\n",
    eval_stdin=b"10 70\n",
    paper=PaperRow(loc="5.7k", exec_time_s=325.5,
                   offloaded_functions="7 / 26",
                   referenced_globals="52 / 79", fn_ptrs=0,
                   target="scan_recognize", coverage_pct=85.44,
                   invocations=1, traffic_mb=16.4),
)

_EQUAKE_SRC = r"""
/* 183.equake counterpart: seismic wave propagation; explicit
   time-stepping over an unstructured-ish grid.  The offload target is the
   *time loop in main* (the paper's main_for.cond548). */
#define NODES 250

double *disp;      /* displacement */
double *vel;
double *acc;
double *stiff;     /* per-node stiffness */
int steps;
double source_amp;

void smvp(void) {
    int i;
    for (i = 1; i < NODES - 1; i++) {
        acc[i] = stiff[i] * (disp[i - 1] - 2.0 * disp[i] + disp[i + 1]);
    }
    acc[0] = 0.0;
    acc[NODES - 1] = 0.0;
}

int main() {
    int t, i;
    double dt = 0.0024;
    scanf("%d %lf", &steps, &source_amp);
    disp = (double*) malloc(NODES * sizeof(double));
    vel = (double*) malloc(NODES * sizeof(double));
    acc = (double*) malloc(NODES * sizeof(double));
    stiff = (double*) malloc(NODES * sizeof(double));
    for (i = 0; i < NODES; i++) {
        disp[i] = 0.0;
        vel[i] = 0.0;
        stiff[i] = 180.0 + (i % 17);
    }
    for (t = 0; t < steps; t++) {
        disp[NODES / 3] += source_amp * (t < 12 ? 1.0 : 0.0);
        smvp();
        for (i = 0; i < NODES; i++) {
            vel[i] += dt * acc[i];
            disp[i] += dt * vel[i];
        }
        if (t % 50 == 0) {
            printf("t=%d disp=%.6f\n", t, disp[NODES / 2]);
        }
    }
    printf("final %.6f %.6f\n", disp[NODES / 4], disp[NODES / 2]);
    return 0;
}
"""

EQUAKE = WorkloadSpec(
    name="183.equake",
    description="Seismic wave propagation (explicit time stepping)",
    source=_EQUAKE_SRC,
    profile_stdin=b"30 0.8\n",
    eval_stdin=b"55 0.8\n",
    paper=PaperRow(loc="1.0k", exec_time_s=334.0,
                   offloaded_functions="5 / 28",
                   referenced_globals="83 / 104", fn_ptrs=0,
                   target="main_for.cond548", coverage_pct=99.44,
                   invocations=1, traffic_mb=16.5),
)

_AMMP_SRC = r"""
/* 188.ammp counterpart: molecular dynamics.  Two offload targets as in
   Table 4: tpac (the big force/integration kernel, one invocation) and
   AMMPmonitor (energy audit, invoked twice). */
#define ATOMS 500

double *px; double *py; double *pz;
double *vx; double *vy; double *vz;
double *fx; double *fy; double *fz;
int natoms;
int md_steps;

void forces(void) {
    int i, j;
    for (i = 0; i < natoms; i++) { fx[i] = 0.0; fy[i] = 0.0; fz[i] = 0.0; }
    for (i = 0; i < natoms; i++) {
        for (j = i + 1; j < i + 8 && j < natoms; j++) {
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            double r2 = dx * dx + dy * dy + dz * dz + 0.05;
            double f = 1.0 / (r2 * r2);
            fx[i] += f * dx; fy[i] += f * dy; fz[i] += f * dz;
            fx[j] -= f * dx; fy[j] -= f * dy; fz[j] -= f * dz;
        }
    }
}

void tpac(void) {
    int s, i;
    double dt = 0.001;
    for (s = 0; s < md_steps; s++) {
        forces();
        for (i = 0; i < natoms; i++) {
            vx[i] += dt * fx[i]; vy[i] += dt * fy[i]; vz[i] += dt * fz[i];
            px[i] += dt * vx[i]; py[i] += dt * vy[i]; pz[i] += dt * vz[i];
        }
    }
}

double AMMPmonitor(void) {
    double kinetic = 0.0, pot = 0.0;
    int i, j;
    for (i = 0; i < natoms; i++) {
        kinetic += vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i];
        for (j = i + 1; j < i + 8 && j < natoms; j++) {
            double dx = px[i] - px[j];
            double dy = py[i] - py[j];
            double dz = pz[i] - pz[j];
            pot += 1.0 / sqrt(dx * dx + dy * dy + dz * dz + 0.05);
        }
    }
    return 0.5 * kinetic + pot;
}

int main() {
    int i;
    double before, after;
    scanf("%d %d", &natoms, &md_steps);
    px = (double*) malloc(ATOMS * sizeof(double));
    py = (double*) malloc(ATOMS * sizeof(double));
    pz = (double*) malloc(ATOMS * sizeof(double));
    vx = (double*) malloc(ATOMS * sizeof(double));
    vy = (double*) malloc(ATOMS * sizeof(double));
    vz = (double*) malloc(ATOMS * sizeof(double));
    fx = (double*) malloc(ATOMS * sizeof(double));
    fy = (double*) malloc(ATOMS * sizeof(double));
    fz = (double*) malloc(ATOMS * sizeof(double));
    for (i = 0; i < natoms; i++) {
        px[i] = (i % 30) * 1.1; py[i] = ((i / 30) % 30) * 1.1;
        pz[i] = (i / 900) * 1.1;
        vx[i] = 0.01 * (i % 7 - 3); vy[i] = 0.01 * (i % 5 - 2);
        vz[i] = 0.0;
    }
    before = AMMPmonitor();
    tpac();
    after = AMMPmonitor();
    printf("energy %.4f -> %.4f\n", before, after);
    return 0;
}
"""

AMMP = WorkloadSpec(
    name="188.ammp",
    description="Computational chemistry (molecular dynamics)",
    source=_AMMP_SRC,
    profile_stdin=b"220 3\n",
    eval_stdin=b"220 5\n",
    paper=PaperRow(loc="9.8k", exec_time_s=878.0,
                   offloaded_functions="17 / 179",
                   referenced_globals="324 / 333", fn_ptrs=66,
                   target="AMMPmonitor + tpac", coverage_pct=99.13,
                   invocations=3, traffic_mb=17.3),
)

_MILC_SRC = r"""
/* 433.milc counterpart: lattice QCD su3-flavoured link update, invoked
   once per trajectory; the user steers trajectories interactively, so the
   steering loop in main stays on the mobile device and `update` is the
   target (2 invocations, as in Table 4). */
#define VOL 600

double *links;   /* VOL x 9 "su3" entries */
double *staples;
int sweeps;

double site_action(int s) {
    double a = 0.0;
    int k;
    for (k = 0; k < 9; k++) {
        double l = links[s * 9 + k];
        double st = staples[s * 9 + k];
        a += l * st - 0.1 * l * l * l * l;
    }
    return a;
}

double update(void) {
    int sweep, s, k;
    double action = 0.0;
    for (sweep = 0; sweep < sweeps; sweep++) {
        for (s = 0; s < VOL; s++) {
            int n = (s + 1) % VOL;
            int p = (s + VOL - 1) % VOL;
            for (k = 0; k < 9; k++) {
                staples[s * 9 + k] = 0.5 * (links[n * 9 + k]
                                            + links[p * 9 + k]);
            }
            for (k = 0; k < 9; k++) {
                double delta = 0.02 * (staples[s * 9 + k]
                                       - links[s * 9 + k]);
                links[s * 9 + k] += delta;
            }
        }
        action = 0.0;
        for (s = 0; s < VOL; s += 16) action += site_action(s);
    }
    return action;
}

int main() {
    int i, traj, ntraj;
    scanf("%d", &ntraj);
    links = (double*) malloc(VOL * 9 * sizeof(double));
    staples = (double*) malloc(VOL * 9 * sizeof(double));
    for (i = 0; i < VOL * 9; i++)
        links[i] = 0.9 + 0.001 * ((i * 2654435761u >> 20) & 127);
    for (traj = 0; traj < ntraj; traj++) {
        double action;
        scanf("%d", &sweeps);
        action = update();
        printf("trajectory %d action %.5f\n", traj, action);
    }
    return 0;
}
"""

MILC = WorkloadSpec(
    name="433.milc",
    description="Quantum chromodynamics (lattice link update)",
    source=_MILC_SRC,
    profile_stdin=b"1\n2\n",
    eval_stdin=b"2\n2\n2\n",
    paper=PaperRow(loc="9.6k", exec_time_s=365.8,
                   offloaded_functions="61 / 235",
                   referenced_globals="445 / 493", fn_ptrs=6,
                   target="update", coverage_pct=96.21,
                   invocations=2, traffic_mb=13.4),
)

_LBM_SRC = r"""
/* 470.lbm counterpart: D2Q5 lattice-Boltzmann fluid solver.  The offload
   target is the time loop in main; the whole lattice crosses the network,
   making this the heaviest-traffic program (643.6 MB in Table 4). */
#define NX 48
#define NY 48
#define Q 5

double *grid_a;
double *grid_b;
int timesteps;

int idx(int x, int y, int q) { return (y * NX + x) * Q + q; }

void collide_stream(double *src, double *dst) {
    int x, y;
    for (y = 1; y < NY - 1; y++) {
        int row = y * NX;
        for (x = 1; x < NX - 1; x++) {
            int base = (row + x) * Q;
            double f0 = src[base], f1 = src[base + 1], f2 = src[base + 2];
            double f3 = src[base + 3], f4 = src[base + 4];
            double rho = f0 + f1 + f2 + f3 + f4;
            double eq = rho / 5.0;
            double ux = f1 - f2;
            double uy = f3 - f4;
            dst[base] = f0 + 0.6 * (eq - f0);
            dst[base + Q + 1] = f1 + 0.6 * (eq + 0.5 * ux - f1);
            dst[base - Q + 2] = f2 + 0.6 * (eq - 0.5 * ux - f2);
            dst[base + NX * Q + 3] = f3 + 0.6 * (eq + 0.5 * uy - f3);
            dst[base - NX * Q + 4] = f4 + 0.6 * (eq - 0.5 * uy - f4);
        }
    }
}

int main() {
    int t, i;
    double *src; double *dst; double *tmp;
    scanf("%d", &timesteps);
    grid_a = (double*) malloc(NX * NY * Q * sizeof(double));
    grid_b = (double*) malloc(NX * NY * Q * sizeof(double));
    for (i = 0; i < NX * NY * Q; i++) {
        grid_a[i] = 1.0 + 0.01 * ((i * 2654435761u >> 18) & 31);
        grid_b[i] = grid_a[i];
    }
    src = grid_a; dst = grid_b;
    for (t = 0; t < timesteps; t++) {
        collide_stream(src, dst);
        tmp = src; src = dst; dst = tmp;
        if (t % 20 == 0) printf("step %d rho %.5f\n", t,
                                src[idx(NX/2, NY/2, 0)]);
    }
    printf("done %.6f\n", src[idx(NX/3, NY/3, 0)]);
    return 0;
}
"""

LBM = WorkloadSpec(
    name="470.lbm",
    description="Fluid dynamics (lattice-Boltzmann D2Q5)",
    source=_LBM_SRC,
    profile_stdin=b"6\n",
    eval_stdin=b"10\n",
    paper=PaperRow(loc="0.9k", exec_time_s=1444.9,
                   offloaded_functions="1 / 19",
                   referenced_globals="16 / 20", fn_ptrs=0,
                   target="main_for.cond", coverage_pct=99.70,
                   invocations=1, traffic_mb=643.6),
    expect_offload_slow=False,
    comm_heavy=True,
)
