"""Wireless network models and the raw link medium.

The paper evaluates under two Wi-Fi environments: a slow 802.11n link
(144 Mbps nominal) and a fast 802.11ac link (844 Mbps nominal).  Effective
throughput of real Wi-Fi is well below nominal; the models below use
effective rates consistent with the paper's estimator example (80 Mbps for
the slow network, Table 3).

Two layers live here (docs/fault-model.md):

* :class:`NetworkModel` — the closed-form time model of one message on a
  healthy link.  Every message pays the link latency plus serialization
  of its payload *and* ``header_bytes`` of protocol framing, so a
  zero-byte message is not free.
* :class:`Link` — the raw simulated medium used by
  :class:`repro.runtime.transport.Transport`: a :class:`NetworkModel`
  plus an optional seeded :class:`FaultPlan` injecting latency jitter,
  transient drops, hard disconnects and bandwidth collapse.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

# Per-message protocol overhead.  Lives here (the medium) so that the
# time model and the wire-byte accounting of the communication manager
# agree on a single constant; re-exported by :mod:`repro.runtime.comm`.
MESSAGE_HEADER_BYTES = 64


@dataclass(frozen=True)
class NetworkModel:
    """A symmetric wireless link."""

    name: str
    bandwidth_bps: float     # effective payload bandwidth, bits/second
    latency_s: float         # one-way latency per message
    slow: bool = False       # drives the transmit-power model (Fig. 8)
    header_bytes: int = MESSAGE_HEADER_BYTES  # per-message framing

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_bps / 8.0

    def one_way_time(self, payload_bytes: int) -> float:
        """Latency + serialization for one message.

        Every message — including a zero-byte one — pays the link
        latency plus the serialization of ``header_bytes`` of protocol
        framing: ``one_way_time(0) > latency_s`` on any finite link.
        """
        return (self.latency_s
                + (payload_bytes + self.header_bytes)
                / self.bandwidth_bytes_per_s)

    def round_trip_time(self, request_bytes: int,
                        response_bytes: int) -> float:
        """Two messages, one each way; agrees with :meth:`one_way_time`
        (each direction pays its own latency and header)."""
        return (self.one_way_time(request_bytes)
                + self.one_way_time(response_bytes))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic schedule of link-level faults.

    All stochastic faults are driven by one ``random.Random(seed)``
    advanced per transmission attempt, so a (plan, message sequence)
    pair always reproduces the same fault schedule.  An empty plan (the
    default) is a strict no-op: the link's timing is bit-identical to
    the plain :class:`NetworkModel` formula.
    """

    seed: int = 0
    drop_rate: float = 0.0            # P(one attempt is silently lost)
    max_jitter_s: float = 0.0         # uniform extra latency [0, max)
    disconnect_after_messages: Optional[int] = None  # hard kill point
    disconnect_rate: float = 0.0      # P(one attempt kills the link)
    reconnect_rate: float = 0.0       # P(one reconnect attempt succeeds)
    bandwidth_factor: float = 1.0     # <1.0 models bandwidth collapse

    def __post_init__(self) -> None:
        for name in ("drop_rate", "disconnect_rate", "reconnect_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1]")
        if self.max_jitter_s < 0.0:
            raise ValueError("max_jitter_s must be nonnegative")
        if self.bandwidth_factor <= 0.0:
            raise ValueError("bandwidth_factor must be positive")
        if (self.disconnect_after_messages is not None
                and self.disconnect_after_messages < 0):
            raise ValueError("disconnect_after_messages must be >= 0")

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing at all."""
        return (self.drop_rate == 0.0
                and self.max_jitter_s == 0.0
                and self.disconnect_after_messages is None
                and self.disconnect_rate == 0.0
                and self.bandwidth_factor == 1.0)


NO_FAULTS = FaultPlan()


@dataclass(frozen=True)
class LinkAttempt:
    """The outcome of one transmission attempt on the raw medium."""

    delivered: bool
    seconds: float            # modeled medium time (0 when nothing moved)
    disconnected: bool = False


class Link:
    """The raw simulated medium: one :class:`NetworkModel` plus an
    optional :class:`FaultPlan`.

    The link is *dumb*: it transmits, drops, jitters or dies, and it
    never retries — reliability is the transport layer's job
    (:class:`repro.runtime.transport.Transport`).
    """

    def __init__(self, network: NetworkModel,
                 plan: Optional[FaultPlan] = None):
        self.network = network
        self.plan = plan if plan is not None and not plan.is_empty else None
        self._rng = (random.Random(self.plan.seed)
                     if self.plan is not None else None)
        self.alive = True
        self.attempts = 0
        self.disconnects = 0

    @property
    def faultless(self) -> bool:
        return self.plan is None

    def expected_time(self, payload_bytes: int,
                      pipelined: bool = False,
                      overhead_s: float = 0.0) -> float:
        """The fault-free time of one attempt at the link's *current*
        effective bandwidth — what the transport sizes timeouts from."""
        net = self.network
        factor = self.plan.bandwidth_factor if self.plan is not None else 1.0
        if pipelined:
            return (overhead_s + payload_bytes
                    / (net.bandwidth_bytes_per_s * factor))
        if factor == 1.0:
            return net.one_way_time(payload_bytes)
        return (net.latency_s + (payload_bytes + net.header_bytes)
                / (net.bandwidth_bytes_per_s * factor))

    def transmit(self, payload_bytes: int, pipelined: bool = False,
                 overhead_s: float = 0.0) -> LinkAttempt:
        """One transmission attempt.

        ``pipelined`` models an operation riding an established stream:
        no per-message latency or header, just a small fixed overhead —
        exactly the batched-output formula of the communication manager.
        """
        net = self.network
        if self.plan is None:
            if pipelined:
                return LinkAttempt(
                    True, overhead_s
                    + payload_bytes / net.bandwidth_bytes_per_s)
            return LinkAttempt(True, net.one_way_time(payload_bytes))
        if not self.alive:
            return LinkAttempt(False, 0.0, disconnected=True)
        plan, rng = self.plan, self._rng
        self.attempts += 1
        if (plan.disconnect_after_messages is not None
                and self.attempts > plan.disconnect_after_messages):
            return self._kill()
        if plan.disconnect_rate and rng.random() < plan.disconnect_rate:
            return self._kill()
        if plan.drop_rate and rng.random() < plan.drop_rate:
            return LinkAttempt(False, 0.0)
        jitter = (rng.random() * plan.max_jitter_s
                  if plan.max_jitter_s else 0.0)
        bandwidth = net.bandwidth_bytes_per_s * plan.bandwidth_factor
        if pipelined:
            seconds = overhead_s + jitter + payload_bytes / bandwidth
        else:
            seconds = (net.latency_s + jitter
                       + (payload_bytes + net.header_bytes) / bandwidth)
        return LinkAttempt(True, seconds)

    def _kill(self) -> LinkAttempt:
        self.alive = False
        self.disconnects += 1
        return LinkAttempt(False, 0.0, disconnected=True)

    def try_reconnect(self) -> bool:
        """One reconnect attempt; seeded like every other fault draw."""
        if self.alive:
            return True
        if not self.can_reconnect:
            return False
        if self._rng.random() < self.plan.reconnect_rate:
            self.alive = True
            return True
        return False

    @property
    def can_reconnect(self) -> bool:
        """Whether a dead link could ever come back: a reconnect rate is
        configured and the hard kill point has not been passed."""
        if self.plan is None or self.plan.reconnect_rate <= 0.0:
            return False
        if (self.plan.disconnect_after_messages is not None
                and self.attempts > self.plan.disconnect_after_messages):
            return False
        return True


# 802.11n: 144 Mbps nominal -> ~80 Mbps effective (the paper's Table 3
# example bandwidth), higher latency.
SLOW_WIFI = NetworkModel("802.11n", bandwidth_bps=80e6, latency_s=2.0e-3,
                         slow=True)

# 802.11ac: 844 Mbps nominal -> ~420 Mbps effective.
FAST_WIFI = NetworkModel("802.11ac", bandwidth_bps=420e6, latency_s=1.0e-3,
                         slow=False)

# A distant cloud server reached over the WAN: similar bandwidth to the
# fast WLAN but ~25x the latency.  The paper's Section 6 cites Cloudlet:
# "the use of a nearby server instead of a cloud server that has higher
# latency and lower bandwidth" reduces communication latency — compare
# offloading over CLOUD_WAN against FAST_WIFI (the cloudlet).
CLOUD_WAN = NetworkModel("cloud-wan", bandwidth_bps=200e6,
                         latency_s=25e-3, slow=False)

# Overhead-free link for the "Ideal offloading" series of Figure 6.
IDEAL_NETWORK = NetworkModel("ideal", bandwidth_bps=1e18, latency_s=0.0,
                             slow=False)

NETWORKS = {net.name: net
            for net in (SLOW_WIFI, FAST_WIFI, CLOUD_WAN, IDEAL_NETWORK)}
