"""Wireless network models.

The paper evaluates under two Wi-Fi environments: a slow 802.11n link
(144 Mbps nominal) and a fast 802.11ac link (844 Mbps nominal).  Effective
throughput of real Wi-Fi is well below nominal; the models below use
effective rates consistent with the paper's estimator example (80 Mbps for
the slow network, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """A symmetric wireless link."""

    name: str
    bandwidth_bps: float     # effective payload bandwidth, bits/second
    latency_s: float         # one-way latency per message
    slow: bool = False       # drives the transmit-power model (Fig. 8)

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.bandwidth_bps / 8.0

    def one_way_time(self, payload_bytes: int) -> float:
        """Latency + serialization for one message."""
        return self.latency_s + payload_bytes / self.bandwidth_bytes_per_s

    def round_trip_time(self, request_bytes: int,
                        response_bytes: int) -> float:
        return (self.one_way_time(request_bytes)
                + self.one_way_time(response_bytes))


# 802.11n: 144 Mbps nominal -> ~80 Mbps effective (the paper's Table 3
# example bandwidth), higher latency.
SLOW_WIFI = NetworkModel("802.11n", bandwidth_bps=80e6, latency_s=2.0e-3,
                         slow=True)

# 802.11ac: 844 Mbps nominal -> ~420 Mbps effective.
FAST_WIFI = NetworkModel("802.11ac", bandwidth_bps=420e6, latency_s=1.0e-3,
                         slow=False)

# A distant cloud server reached over the WAN: similar bandwidth to the
# fast WLAN but ~25x the latency.  The paper's Section 6 cites Cloudlet:
# "the use of a nearby server instead of a cloud server that has higher
# latency and lower bandwidth" reduces communication latency — compare
# offloading over CLOUD_WAN against FAST_WIFI (the cloudlet).
CLOUD_WAN = NetworkModel("cloud-wan", bandwidth_bps=200e6,
                         latency_s=25e-3, slow=False)

# Overhead-free link for the "Ideal offloading" series of Figure 6.
IDEAL_NETWORK = NetworkModel("ideal", bandwidth_bps=1e18, latency_s=0.0,
                             slow=False)

NETWORKS = {net.name: net
            for net in (SLOW_WIFI, FAST_WIFI, CLOUD_WAN, IDEAL_NETWORK)}
