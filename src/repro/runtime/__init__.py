"""The Native Offloader runtime: UVA sharing, communication, dynamic
estimation and the offload session life cycle (paper, Section 4)."""

from .network import (CLOUD_WAN, FAST_WIFI, FaultPlan, IDEAL_NETWORK,
                      Link, LinkAttempt, NETWORKS, NO_FAULTS,
                      NetworkModel, SLOW_WIFI)
from .transport import (LinkDownError, RetryPolicy, Transport,
                        TransportError, TransportStats)
from .comm import (CommStats, CommunicationManager, TransferResult,
                   COMPRESS_CYCLES_PER_BYTE, DECOMPRESS_CYCLES_PER_BYTE,
                   DELTA_RECORD_HEADER_BYTES, MESSAGE_HEADER_BYTES,
                   delta_records_size, encode_delta_records)
from .fcn_table import (FunctionAddressTable, MAP_LOOKUP_CYCLES,
                        UnmappableFunctionPointer)
from .uva import PrefetchAdvisor, UVAManager, UVAStats
from .dynamic_estimator import (DynamicPerformanceEstimator, GainEstimate,
                                TargetRuntimeState)
from .prediction import BandwidthPredictor, PredictionRecord
from .backend import (Admission, DirectDispatcher, ExecutionBackend,
                      InvocationRecord, LocalBackend, OffloadDispatcher,
                      Rejection, RemoteBackend)
from .session import OffloadSession, SessionOptions, SessionResult
from .local import LocalRunResult, run_local

__all__ = [
    "CLOUD_WAN", "FAST_WIFI", "IDEAL_NETWORK", "NETWORKS",
    "NetworkModel", "SLOW_WIFI",
    "FaultPlan", "Link", "LinkAttempt", "NO_FAULTS",
    "LinkDownError", "RetryPolicy", "Transport", "TransportError",
    "TransportStats",
    "BandwidthPredictor", "PredictionRecord",
    "CommStats", "CommunicationManager", "TransferResult",
    "COMPRESS_CYCLES_PER_BYTE", "DECOMPRESS_CYCLES_PER_BYTE",
    "DELTA_RECORD_HEADER_BYTES", "MESSAGE_HEADER_BYTES",
    "delta_records_size", "encode_delta_records",
    "FunctionAddressTable", "MAP_LOOKUP_CYCLES",
    "UnmappableFunctionPointer",
    "PrefetchAdvisor", "UVAManager", "UVAStats",
    "DynamicPerformanceEstimator", "GainEstimate", "TargetRuntimeState",
    "Admission", "DirectDispatcher", "ExecutionBackend",
    "LocalBackend", "OffloadDispatcher", "Rejection", "RemoteBackend",
    "InvocationRecord", "OffloadSession", "SessionOptions", "SessionResult",
    "LocalRunResult", "run_local",
]
