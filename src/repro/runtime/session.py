"""The Native Offloader runtime: seamless cooperative execution of the
offloading-enabled binaries (paper, Section 4, Figure 5).

An :class:`OffloadSession` owns one mobile machine and one server machine,
loads the two partitions, wires the runtime services (dynamic estimation,
UVA copy-on-demand, remote I/O forwarding, function-pointer mapping), and
executes the program with full time/energy accounting:

    local execution -> [decision] -> initialization -> offloading
    execution (CoD faults, remote I/O) -> finalization -> local execution

Simulated wall-clock time on the mobile device is the sum of its own
compute time plus everything it waits for; the power-state model integrates
that timeline into battery energy (Figures 6(b) and 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..machine.energy import EnergyMeter, PowerTrace
from ..machine.fs import IOEnvironment
from ..machine.interpreter import ExitProgram, Interpreter
from ..machine.libc import format_printf, install_libc
from ..machine.machine import MOBILE_STACK_TOP, Machine
from ..offload.partition import OffloadTarget, OFFLOAD_PREFIX, SHOULD_OFFLOAD
from ..offload.pipeline import OffloadProgram
from ..offload.server_opt import M2S_FCN_MAP, S2M_FCN_MAP
from ..offload.unify import unified_data_layout
from ..runtime.backend import (InvocationRecord, LocalBackend,
                               OffloadDispatcher, RemoteBackend)
from ..runtime.comm import CommunicationManager
from ..runtime.dynamic_estimator import DynamicPerformanceEstimator
from ..runtime.fcn_table import (FunctionAddressTable, MAP_LOOKUP_CYCLES)
from ..runtime.network import FaultPlan, NetworkModel
from ..runtime.transport import (LinkDownError, RetryPolicy,
                                 TransportStats)
from ..runtime.uva import UVAManager, UVAStats
from ..trace import NULL_TRACER, Tracer
from ..trace.tracer import DEFAULT_CAPACITY as TRACE_DEFAULT_CAPACITY


@dataclass
class SessionOptions:
    page_size: int = 4096
    enable_prefetch: bool = True
    enable_batching: bool = True
    enable_compression: bool = True
    enable_copy_on_demand: bool = True
    # Incremental UVA data plane (docs/uva-data-plane.md): cross-
    # invocation page cache + version vectors, sub-page delta transfers,
    # and fault-history-driven adaptive prefetch.  With all three off the
    # data plane is the naive one (full invalidation, whole pages) —
    # the differential tests assert bit-identical program output and
    # final mobile memory between the two.
    enable_page_cache: bool = True
    enable_delta_transfer: bool = True
    enable_adaptive_prefetch: bool = True
    enable_dynamic_estimation: bool = True
    enable_stack_reallocation: bool = True
    # NWSLite-style bandwidth prediction (paper, Section 6): the dynamic
    # estimator forecasts the live link's bandwidth from observed
    # transfers instead of trusting its nominal rate.
    enable_bandwidth_prediction: bool = False
    # Ideal-offloading mode: overheads (communication, remote I/O,
    # function-pointer translation) cost zero time; Figure 6's "Ideal".
    zero_overhead: bool = False
    force_local: bool = False
    max_instructions: int = 500_000_000
    power_mw: Optional[Dict[str, float]] = None
    # Structured tracing (repro.trace): off by default and strictly
    # observational — with tracing disabled the session performs exactly
    # the arithmetic it performs without the subsystem (the
    # tracing-disabled invariant; see docs/observability.md).
    enable_tracing: bool = False
    trace_capacity: int = TRACE_DEFAULT_CAPACITY
    # Link fault injection (docs/fault-model.md): a seeded FaultPlan
    # turns the perfect simulated link into one with jitter, drops,
    # disconnects and bandwidth collapse.  None (or an empty plan) keeps
    # every session number bit-identical to the fault-free runtime — the
    # zero-fault no-op invariant of DESIGN.md §5.
    fault_plan: Optional[FaultPlan] = None
    # Transport retry/backoff/reconnect budget; None uses the defaults.
    retry_policy: Optional[RetryPolicy] = None
    # Fleet wiring (docs/fleet.md).  `dispatcher` is where the remote
    # backend asks for a server before each invocation — None (the
    # default) is the paper's dedicated server and performs no admission
    # work at all; a fleet scheduler substitutes a pooled dispatcher so
    # admission can queue or refuse.  `session_id` tags every trace
    # event so one merged timeline can cover a whole fleet.
    dispatcher: Optional[OffloadDispatcher] = None
    session_id: Optional[str] = None
    # Scatter/gather parallel offload (docs/parallel-offload.md).
    # ``shards`` is the *desired* plan width k: a shardable target's
    # invocation is split into up to k index-range shards scattered
    # across servers and gathered afterwards.  1 (the default) is the
    # paper's single-server path, byte-identical to the pre-plan
    # runtime; non-shardable targets degrade to 1 at any setting.
    shards: int = 1
    # Straggler policy: a shard whose execution time exceeds
    # ``straggler_factor`` x the fastest shard's is abandoned and
    # replayed locally (charged to mobile time/energy).  0.0 disables
    # lateness detection (only injected faults straggle); any other
    # value must be >= 1.0 — a factor in (0, 1) would brand every
    # shard, the fastest included, a straggler.
    straggler_factor: float = 0.0
    # Fault injection for the shard-fault differential tests: shard
    # indices in this tuple never execute server-side and are replayed
    # locally on gather (DESIGN.md §5, shard-fault invariant).
    shard_faults: Optional[tuple] = None

    def __post_init__(self) -> None:
        if self.straggler_factor != 0.0 and self.straggler_factor < 1.0:
            raise ValueError(
                "straggler_factor must be 0.0 (disabled) or >= 1.0; "
                f"got {self.straggler_factor!r} — a factor below 1.0 "
                "would abandon every shard, the fastest included")
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1; got {self.shards!r}")


@dataclass
class SessionResult:
    program: str
    network: str
    exit_code: int
    stdout: str
    total_seconds: float
    mobile_compute_seconds: float
    server_compute_seconds: float
    comm_seconds: float
    remote_io_seconds: float
    fnptr_seconds: float
    energy_mj: float
    power_trace: PowerTrace
    invocations: List[InvocationRecord]
    instructions_mobile: int
    instructions_server: int
    cod_faults: int
    bytes_to_server: int
    bytes_to_mobile: int
    compression_saved_bytes: int
    # The session's tracer when SessionOptions.enable_tracing was set
    # (None otherwise); carries the event ring buffer and the metrics
    # registry.  See docs/observability.md.
    trace: Optional[Tracer] = None
    # Transport-layer counters (retries, drops, reconnects, backoff);
    # all zeros on a fault-free link.
    transport_stats: Optional[TransportStats] = None
    # UVA data-plane counters (prefetch/write-back timing, page-cache
    # hits, delta savings, adaptive-prefetch hit/waste).
    uva_stats: Optional[UVAStats] = None

    def trace_events(self):
        """The captured trace events ([] when tracing was disabled)."""
        return self.trace.events() if self.trace is not None else []

    @property
    def offloaded_invocations(self) -> int:
        return sum(1 for r in self.invocations if r.offloaded)

    @property
    def declined_invocations(self) -> int:
        return sum(1 for r in self.invocations
                   if not r.offloaded and not r.aborted and not r.rejected)

    @property
    def rejected_invocations(self) -> int:
        """Invocations the server pool refused to admit (fleet runs)."""
        return sum(1 for r in self.invocations if r.rejected)

    @property
    def queue_seconds(self) -> float:
        """Simulated time spent waiting for a server slot (fleet runs)."""
        return sum(r.queue_seconds for r in self.invocations)

    @property
    def aborted_invocations(self) -> int:
        """Invocations that started offloading but lost the link."""
        return sum(1 for r in self.invocations if r.aborted)

    @property
    def local_fallbacks(self) -> int:
        """Invocations that degraded to local execution after starting
        down the offload path: aborted ones (all of them, unless the
        abort itself failed — which would have raised) plus
        pool-rejected ones."""
        return sum(1 for r in self.invocations if r.fallback_local)

    @property
    def wasted_seconds(self) -> float:
        """Simulated time burned on deliveries that never completed."""
        return sum(r.wasted_seconds for r in self.invocations)

    def breakdown(self) -> Dict[str, float]:
        """The Figure 7 stack: computation / fn-ptr / remote I/O / comm."""
        return {
            "computation": (self.mobile_compute_seconds
                            + self.server_compute_seconds),
            "fn_ptr_translation": self.fnptr_seconds,
            "remote_io": self.remote_io_seconds,
            "communication": self.comm_seconds,
        }

    @property
    def traffic_per_invocation_mb(self) -> float:
        n = max(self.offloaded_invocations, 1)
        return (self.bytes_to_server + self.bytes_to_mobile) / n / 1e6


from ..machine.interpreter import Observer as _Observer


class _TargetTimer(_Observer):
    """Times locally-executed offload targets on the mobile device so the
    dynamic estimator can refine its Tm with observed run-time values
    (paper, Section 4: "target execution time information")."""

    wants_memory = False
    wants_blocks = False

    def __init__(self, session: "OffloadSession"):
        self.session = session
        self.targets = {t.name for t in session.program.targets}
        self.clock_hz = session.mobile.arch.clock_hz
        self._stack = []

    def enter_function(self, fn, cycles: float) -> None:
        if fn.name in self.targets:
            self._stack.append((fn.name, cycles))

    def exit_function(self, fn, cycles: float) -> None:
        if self._stack and self._stack[-1][0] == fn.name:
            name, start = self._stack.pop()
            self.session.estimator.record_local_time(
                name, (cycles - start) / self.clock_hz)


class OffloadSession:
    """Executes one offloading-enabled program over one network."""

    def __init__(self, program: OffloadProgram, network: NetworkModel,
                 options: Optional[SessionOptions] = None,
                 stdin: bytes = b"",
                 files: Optional[Dict[str, bytes]] = None):
        self.program = program
        self.network = network
        self.options = options or SessionOptions()
        opts = self.options

        mobile_arch = program.options.mobile_arch
        server_arch = program.options.server_arch
        self.mobile = Machine(mobile_arch, "mobile",
                              io=IOEnvironment(files=files, stdin=stdin),
                              page_size=opts.page_size)
        self.server = Machine(server_arch, "server",
                              page_size=opts.page_size)
        if not opts.enable_stack_reallocation:
            self.server.stack_top = MOBILE_STACK_TOP
        # Unified data layout: the mobile layout rules both machines.
        self.mobile.set_layout(
            unified_data_layout(program.mobile_module, mobile_arch))
        self.server.set_layout(
            unified_data_layout(program.server_module, server_arch))
        install_libc(self.mobile)
        install_libc(self.server)
        self.mobile.load(program.mobile_module)
        self.server.load(program.server_module)

        # The structured tracer observes every runtime service; the
        # shared NULL_TRACER keeps the disabled path free of new work.
        self.tracer = (Tracer(capacity=opts.trace_capacity, clock=self.now,
                              sid=opts.session_id)
                       if opts.enable_tracing else NULL_TRACER)
        self.comm = CommunicationManager(
            network,
            enable_batching=opts.enable_batching,
            enable_compression=opts.enable_compression,
            server_clock_hz=server_arch.clock_hz,
            mobile_clock_hz=mobile_arch.clock_hz,
            tracer=self.tracer,
            fault_plan=opts.fault_plan,
            retry_policy=opts.retry_policy)
        # Snapshot/rollback machinery only engages on a faulty link; the
        # fault-free path must stay bit-identical to the pre-fault runtime
        # (the zero-fault no-op invariant, DESIGN.md §5).
        self._faulty = (opts.fault_plan is not None
                        and not opts.fault_plan.is_empty)
        self._replay_instructions = 0
        self.uva = UVAManager(
            self.mobile, self.server, self.comm,
            enable_prefetch=opts.enable_prefetch,
            enable_copy_on_demand=opts.enable_copy_on_demand,
            enable_page_cache=opts.enable_page_cache,
            enable_delta_transfer=opts.enable_delta_transfer,
            enable_adaptive_prefetch=opts.enable_adaptive_prefetch,
            tracer=self.tracer)
        self.fcn_table = FunctionAddressTable(self.mobile, self.server)
        from .prediction import BandwidthPredictor
        self.predictor = (BandwidthPredictor()
                          if opts.enable_bandwidth_prediction else None)
        self.estimator = DynamicPerformanceEstimator(
            program.profile, program.options.resolved_ratio(), network,
            predictor=self.predictor, tracer=self.tracer,
            transport=self.comm.transport)
        self.meter = EnergyMeter(opts.power_mw)
        # The execution-backend seam (repro.runtime.backend): the remote
        # backend owns the offload protocol over the stack wired above;
        # the local backend is the degradation path (aborts, pool
        # rejections).  A fleet scheduler passes a pooled dispatcher
        # through SessionOptions; None keeps the dedicated-server path
        # bit-identical to the pre-seam session.
        self.local_backend = LocalBackend(self)
        self.remote_backend = RemoteBackend(self, dispatcher=opts.dispatcher)

        # Timeline bookkeeping (see _advance / _mark_compute).
        self.extra_seconds = 0.0      # non-compute wall time so far
        self._compute_mark = 0.0      # mobile interp seconds already traced
        self.remote_io_seconds = 0.0
        self.remote_io_count = 0
        self.server_instructions = 0
        self.server_compute_seconds = 0.0
        self.fnptr_seconds = 0.0
        self._fnptr_lookups = 0   # only maintained while tracing
        self.invocations: List[InvocationRecord] = []
        self.mobile_interp: Optional[Interpreter] = None
        self._current_server_interp: Optional[Interpreter] = None
        self._rio_pending = 0.0
        self._register_runtime_builtins()

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def run(self, argv: tuple = ()) -> SessionResult:
        tr = self.tracer
        if tr.enabled:
            tr.emit("session.start", self.program.name,
                    network=self.network.name,
                    targets=[t.name for t in self.program.targets],
                    zero_overhead=self.options.zero_overhead,
                    force_local=self.options.force_local)
        interp = Interpreter(self.mobile, observer=_TargetTimer(self),
                             max_instructions=self.options.max_instructions)
        self.mobile_interp = interp
        exit_code = interp.run_main(argv)
        self._mark_compute()
        trace = self.meter.trace
        total = self.now()
        if tr.enabled:
            tr.emit("session.end", self.program.name,
                    exit_code=exit_code,
                    total_seconds=total,
                    mobile_compute_seconds=interp.time_seconds,
                    server_compute_seconds=self.server_compute_seconds,
                    comm_seconds=self.comm.stats.comm_seconds,
                    remote_io_seconds=self.remote_io_seconds,
                    fnptr_seconds=self.fnptr_seconds,
                    energy_mj=trace.total_energy_mj,
                    instructions_mobile=(interp.instruction_count
                                         + self._replay_instructions),
                    instructions_server=self.server_instructions)
            metrics = tr.metrics
            metrics.gauge("session.total_seconds").set(total)
            metrics.gauge("session.energy_mj").set(trace.total_energy_mj)
            metrics.counter("time.mobile_compute_seconds").inc(
                interp.time_seconds)
            metrics.counter("time.remote_io_seconds").inc(
                self.remote_io_seconds)
            metrics.counter("time.fnptr_seconds").inc(self.fnptr_seconds)
        return SessionResult(
            program=self.program.name,
            network=self.network.name,
            exit_code=exit_code,
            stdout=self.mobile.io.stdout_text(),
            total_seconds=total,
            mobile_compute_seconds=interp.time_seconds,
            server_compute_seconds=max(
                self.server_compute_seconds - self.fnptr_seconds
                - self._server_side_io_seconds(), 0.0),
            comm_seconds=(0.0 if self.options.zero_overhead
                          else self.comm.stats.comm_seconds),
            remote_io_seconds=self.remote_io_seconds,
            fnptr_seconds=self.fnptr_seconds,
            energy_mj=trace.total_energy_mj,
            power_trace=trace,
            invocations=self.invocations,
            instructions_mobile=(interp.instruction_count
                                 + self._replay_instructions),
            instructions_server=self.server_instructions,
            cod_faults=self.uva.stats.cod_faults,
            bytes_to_server=self.comm.stats.bytes_to_server,
            bytes_to_mobile=self.comm.stats.bytes_to_mobile,
            compression_saved_bytes=self.comm.stats.compression_saved_bytes,
            trace=tr if tr.enabled else None,
            transport_stats=self.comm.transport.stats,
            uva_stats=self.uva.stats,
        )

    def now(self) -> float:
        """Current simulated mobile wall-clock time."""
        mobile = (self.mobile_interp.time_seconds
                  if self.mobile_interp is not None else 0.0)
        return mobile + self.extra_seconds

    # ------------------------------------------------------------------
    # Timeline / power helpers
    # ------------------------------------------------------------------
    def _mark_compute(self) -> None:
        """Emit the pending mobile-compute interval into the power trace."""
        if self.mobile_interp is None:
            return
        compute = self.mobile_interp.time_seconds
        if compute > self._compute_mark:
            start = self._compute_mark + self.extra_seconds
            end = compute + self.extra_seconds
            self.meter.charge(start, end, "compute")
            self._compute_mark = compute

    def _advance(self, seconds: float, state: str,
                 power_mw: Optional[float] = None) -> None:
        """Advance wall time by a non-compute interval."""
        if seconds <= 0:
            return
        start = self.now()
        self.extra_seconds += seconds
        self.meter.charge(start, start + seconds, state, power_mw)

    def _server_side_io_seconds(self) -> float:
        return 0.0  # remote I/O time is tracked separately already

    # ------------------------------------------------------------------
    # Runtime builtins
    # ------------------------------------------------------------------
    def _register_runtime_builtins(self) -> None:
        mobile, server = self.mobile, self.server
        mobile.register_builtin(SHOULD_OFFLOAD, self._bi_should_offload)
        for target in self.program.targets:
            mobile.register_builtin(OFFLOAD_PREFIX + target.name,
                                    self._make_offload_builtin(target))
        server.register_builtin(M2S_FCN_MAP, self._bi_m2s)
        server.register_builtin(S2M_FCN_MAP, self._bi_s2m)
        for name in ("printf", "puts", "putchar", "fprintf", "fwrite",
                     "fopen", "fclose", "fread", "fgets", "fgetc", "feof"):
            server.register_builtin("r_" + name,
                                    self._make_remote_io(name))

    # -- decision ---------------------------------------------------------
    def _bi_should_offload(self, interp: Interpreter, args) -> int:
        target = self.program.partition.target_by_id(int(args[0]))
        interp.charge("alu", 40)  # estimation cost
        if self.options.force_local:
            decision, reason = False, "force_local"
        elif not self.options.enable_dynamic_estimation:
            decision, reason = True, "estimation_disabled"
        else:
            decision = self.estimator.should_offload(target)
            reason = self.estimator.last_reason or (
                "positive_gain" if decision else "negative_gain")
        if not decision:
            self.invocations.append(
                InvocationRecord(target=target.name, offloaded=False))
        tr = self.tracer
        if tr.enabled:
            est = self.estimator.last_estimate
            gain = (est.gain if reason in ("positive_gain",
                                           "negative_gain")
                    and est is not None else None)
            tr.emit("decision", target.name, offloaded=decision,
                    reason=reason, gain_seconds=gain)
            metrics = tr.metrics
            metrics.counter("decisions.total").inc()
            metrics.counter("decisions.offloaded"
                            if decision else "decisions.declined").inc()
        return 1 if decision else 0

    # -- fn-ptr mapping ---------------------------------------------------
    def _charge_fnptr(self, interp: Interpreter) -> None:
        if self.tracer.enabled:
            # Individual lookups are nanosecond-scale and extremely
            # frequent; they are aggregated into one fnptr.window event
            # per invocation instead of traced one by one.
            self._fnptr_lookups += 1
        if self.options.zero_overhead:
            return
        interp.charge_raw_cycles(MAP_LOOKUP_CYCLES, "alu")
        self.fnptr_seconds += (MAP_LOOKUP_CYCLES
                               / self.server.arch.clock_hz)

    def _bi_m2s(self, interp: Interpreter, args) -> int:
        self._charge_fnptr(interp)
        return self.fcn_table.map_m2s(int(args[0]))

    def _bi_s2m(self, interp: Interpreter, args) -> int:
        self._charge_fnptr(interp)
        return self.fcn_table.map_s2m(int(args[0]))

    # -- remote I/O ------------------------------------------------------
    def _make_remote_io(self, name: str):
        def builtin(interp: Interpreter, args):
            return self._remote_io(name, interp, args)
        return builtin

    def _remote_input_cost(self, nbytes: int) -> float:
        """Cost of one remote *input* operation.

        File input is remotely executable because the runtime prefetches
        file data and pipelines requests (paper, Section 3.4 / Rio [23]),
        so an individual read does not pay a full network round trip —
        just a pipelined-RPC overhead plus serialization.  It is still far
        more expensive than local I/O, which is why 300.twolf, 445.gobmk
        and 464.h264ref show large remote-I/O overheads in Figure 7."""
        result = self.comm.round_trip(24, nbytes)
        pipelined = (max(100e-6, self.network.latency_s / 8.0)
                     + nbytes / self.network.bandwidth_bytes_per_s)
        # round_trip() recorded the traffic; replace its latency-bound
        # timing with the pipelined figure.
        self.comm.adjust_seconds(pipelined - result.seconds,
                                 "pipelined_input")
        return pipelined

    def _remote_io(self, name: str, interp: Interpreter, args):
        """Execute an I/O operation of the server partition on the mobile
        device, charging the forwarding cost."""
        mobile_io = self.mobile.io
        server_mem = self.server.memory
        self.remote_io_count += 1
        seconds = 0.0
        result = 0
        io_bytes = 0
        if name == "printf":
            fmt = server_mem.read_cstring(int(args[0]))
            text = format_printf(interp, fmt, args[1:])
            mobile_io.write_stdout(text)
            seconds = self.comm.stream_to_mobile(text).seconds
            result = len(text)
            io_bytes = len(text)
        elif name == "puts":
            text = server_mem.read_cstring(int(args[0])) + b"\n"
            mobile_io.write_stdout(text)
            seconds = self.comm.stream_to_mobile(text).seconds
            result = len(text)
            io_bytes = len(text)
        elif name == "putchar":
            ch = bytes([int(args[0]) & 0xFF])
            mobile_io.write_stdout(ch)
            seconds = self.comm.stream_to_mobile(ch).seconds
            result = int(args[0])
            io_bytes = 1
        elif name == "fprintf":
            fmt = server_mem.read_cstring(int(args[1]))
            text = format_printf(interp, fmt, args[2:])
            handle = int(args[0])
            f = mobile_io.file(handle)
            if f is None:
                mobile_io.write_stdout(text)
            else:
                f.write(text)
            seconds = self.comm.stream_to_mobile(text).seconds
            result = len(text)
            io_bytes = len(text)
        elif name == "fwrite":
            ptr, size, count, handle = (int(args[0]), int(args[1]),
                                        int(args[2]), int(args[3]))
            data = server_mem.read(ptr, size * count)
            f = mobile_io.file(handle)
            written = f.write(data) if f is not None else 0
            seconds = self.comm.stream_to_mobile(data).seconds
            result = written // size if size else 0
            io_bytes = len(data)
        elif name == "fopen":
            path = server_mem.read_cstring(int(args[0])).decode()
            mode = server_mem.read_cstring(int(args[1])).decode()
            result = mobile_io.open(path, mode)
            seconds = self.comm.round_trip(len(path) + 16, 16).seconds
            io_bytes = len(path) + 32
        elif name == "fclose":
            result = mobile_io.close(int(args[0])) & 0xFFFFFFFF
            seconds = self.comm.round_trip(16, 16).seconds
            io_bytes = 32
        elif name == "fread":
            ptr, size, count, handle = (int(args[0]), int(args[1]),
                                        int(args[2]), int(args[3]))
            f = mobile_io.file(handle)
            data = f.read(size * count) if f is not None else b""
            if data:
                server_mem.write(ptr, data)
            seconds = self._remote_input_cost(len(data))
            result = len(data) // size if size else 0
            io_bytes = len(data)
        elif name == "fgets":
            ptr, limit, handle = int(args[0]), int(args[1]), int(args[2])
            f = mobile_io.file(handle)
            if f is None or f.at_eof:
                seconds = self._remote_input_cost(16)
                result = 0
                io_bytes = 16
            else:
                line = f.read_line(limit)
                server_mem.write(ptr, line + b"\x00")
                seconds = self._remote_input_cost(len(line))
                result = ptr
                io_bytes = len(line)
        elif name == "fgetc":
            f = mobile_io.file(int(args[0]))
            ch = f.read(1) if f is not None else b""
            seconds = self._remote_input_cost(1)
            result = ch[0] if ch else 0xFFFFFFFF
            io_bytes = 1
        elif name == "feof":
            f = mobile_io.file(int(args[0]))
            seconds = self._remote_input_cost(1)
            result = 1 if (f is None or f.at_eof) else 0
            io_bytes = 1
        else:
            raise KeyError(f"unknown remote I/O function {name}")
        if self.options.zero_overhead:
            seconds = 0.0
        else:
            interp.charge("call", 4)  # request marshalling on the server
        self.remote_io_seconds += seconds
        self._rio_pending += seconds
        tr = self.tracer
        if tr.enabled:
            tr.emit("rio.op", name, dur=seconds, bytes=io_bytes)
            tr.metrics.counter("rio.ops").inc()
            tr.metrics.counter("rio.bytes").inc(io_bytes)
        return result

    def _prefetch_pages(self, target_name: str, stack_pointer: int) -> set:
        """The "most likely used" page set pushed at initialization.

        The profiler recorded which pages the target touched under the
        *profiling* input; heap pages from that run are translated into
        the UVA heap (allocation order is deterministic, so offsets
        carry over, give or take a page).  The live mobile stack and the
        UVA-globals pages join the set.  Anything the evaluation input
        touches beyond this is served by copy-on-demand."""
        from ..machine.machine import (NATIVE_HEAP_BASES, NATIVE_HEAP_SIZE,
                                       MOBILE_STACK_TOP, STACK_SIZE,
                                       UVA_HEAP_BASE)
        psize = self.options.page_size
        uva_base = UVA_HEAP_BASE // psize
        stack_high = MOBILE_STACK_TOP // psize
        pages = set(self.uva.live_mobile_pages(stack_pointer))
        # UVA-reallocated globals live at the base of the UVA heap.
        pages.update(range(uva_base, uva_base + 2))
        # live stack frames of the suspended mobile execution
        pages.update(range(stack_pointer // psize - 1, stack_high + 1))
        return pages

    # -- the offload protocol ----------------------------------------------
    def _make_offload_builtin(self, target: OffloadTarget):
        def builtin(interp: Interpreter, args):
            return self.remote_backend.execute(target, interp, list(args))
        return builtin
