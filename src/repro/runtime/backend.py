"""Execution backends: the seam between *deciding* where an offload
target runs and the machinery that actually runs it.

Historically :class:`repro.runtime.session.OffloadSession` hard-wired the
whole offload protocol — initialization, server execution, finalization,
abort-and-replay — inside one private method, which made it impossible to
point the same session logic at anything other than its single dedicated
server.  This module extracts that machinery behind a small protocol:

* :class:`ExecutionBackend` — the surface every backend implements:
  ``estimate`` (what would running here gain?), ``execute`` (run one
  invocation of a target) and ``abort`` (tear down a failed invocation).
* :class:`LocalBackend` — executes the target on the mobile device using
  a sub-interpreter that shares the suspended caller's stack.  Used for
  the replay after a mid-invocation link failure and for invocations the
  server pool refuses to admit.
* :class:`RemoteBackend` — the full offload protocol over the
  transport/UVA/communication stack, bit-identical to the pre-seam
  session (guarded by the differential test in ``tests/test_fleet.py``).

The remote backend additionally consults an :class:`OffloadDispatcher`
before starting an invocation.  The default (``dispatcher=None`` — the
paper's one-device/one-server world) performs no admission work at all;
a fleet run substitutes a dispatcher wired to a shared
:class:`repro.fleet.pool.ServerPool`, so admission can carry a queueing
delay (charged to the device timeline and battery exactly as link time
is) or be refused outright, in which case the invocation degrades to
:class:`LocalBackend` (docs/fleet.md).  The event-driven
:class:`repro.fleet.scheduler.FleetScheduler` supplies a
:class:`repro.fleet.replay.ScriptedDispatcher` that replays recorded
pool outcomes into the session; sessions only ever read the
session-visible fields of an :class:`Admission` (``server_id``,
``queue_seconds``, and the heterogeneous-pool fields ``speed`` /
``network`` / ``tier`` / ``deadline_s`` / ``priority``) and the
``estimated_wait_s`` of a :class:`Rejection`, which is what makes that
replay exact (docs/simulator.md, "Replay, not resumption").

Heterogeneous pools (docs/placement.md): an admission may carry a
``speed`` multiplier — server compute time divides by it — and a
``network`` override, under which every byte of the invocation travels
the admitting tier's link (a cloud server is fast-far: big ``speed``,
WAN network).  Both default to no-ops, keeping the single-session and
homogeneous-fleet arithmetic bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from ..machine.interpreter import Interpreter
from ..offload.partition import OffloadTarget
from .transport import LinkDownError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dynamic_estimator import GainEstimate
    from .session import OffloadSession


@dataclass
class InvocationRecord:
    """Accounting for one dynamic offload decision site execution."""

    target: str
    offloaded: bool
    init_seconds: float = 0.0
    server_seconds: float = 0.0
    cod_seconds: float = 0.0
    remote_io_seconds: float = 0.0
    fnptr_seconds: float = 0.0
    finalize_seconds: float = 0.0
    bytes_to_server: int = 0
    bytes_to_mobile: int = 0
    cod_faults: int = 0
    local_seconds: float = 0.0
    # Mid-invocation failure accounting: an aborted invocation burned
    # `wasted_seconds` on the dead link in `abort_phase`
    # (init/exec/finalize), then replayed the target locally
    # (`fallback_local`).
    aborted: bool = False
    abort_phase: Optional[str] = None
    fallback_local: bool = False
    wasted_seconds: float = 0.0
    # Fleet accounting (docs/fleet.md): time spent queued for a server
    # slot, which server served the invocation, and whether the pool
    # refused admission (the invocation then ran locally).
    queue_seconds: float = 0.0
    server_id: Optional[int] = None
    rejected: bool = False
    # Placement accounting (docs/placement.md): the tier that served
    # the invocation, and the deadline/priority the request carried
    # into the pool's decision engine.
    tier: Optional[str] = None
    deadline_s: Optional[float] = None
    priority: bool = False

    @property
    def traffic_bytes(self) -> int:
        return self.bytes_to_server + self.bytes_to_mobile


@dataclass(frozen=True)
class Admission:
    """A granted server slot for one offload invocation.

    Sessions read ``server_id``, ``queue_seconds`` and the
    heterogeneous-pool echo fields (``speed``, ``network``, ``tier``,
    ``deadline_s``, ``priority``); ``start_s``/``token`` are pool
    bookkeeping.  The event-driven fleet scheduler's replay correctness
    depends on that split
    (:class:`repro.fleet.replay.OutcomeProjection`) — a backend change
    that makes sessions consume more of this object must extend the
    projection too.
    """

    server_id: int = 0
    queue_seconds: float = 0.0    # time the device waits before service
    start_s: float = 0.0          # global fleet time service begins
    token: object = None          # pool-internal reservation handle
    # Heterogeneous-pool fields (docs/placement.md).  speed divides
    # server compute time; network, when set, is the admitting tier's
    # link the comm layer uses for the whole invocation.  tier /
    # deadline_s / priority are echoes for InvocationRecord accounting.
    speed: float = 1.0
    network: object = None        # NetworkModel override or None
    tier: Optional[str] = None
    deadline_s: Optional[float] = None
    priority: bool = False


@dataclass(frozen=True)
class Rejection:
    """Admission refused: every eligible queue was full."""

    estimated_wait_s: float = 0.0  # the wait the job would have faced


class OffloadDispatcher:
    """Where :class:`RemoteBackend` asks for a server.

    ``admit`` receives the target name and the *session-local* current
    time and returns an :class:`Admission` or a :class:`Rejection`;
    ``release`` hands the slot back at the session-local end time.  Fleet
    dispatchers translate session-local time to global fleet time by
    adding the device's start offset.
    """

    def admit(self, target_name: str, now_s: float):
        raise NotImplementedError

    def release(self, admission: Admission, now_s: float) -> None:
        raise NotImplementedError


class DirectDispatcher(OffloadDispatcher):
    """The paper's dedicated server: admission is immediate and free."""

    def admit(self, target_name: str, now_s: float) -> Admission:
        return Admission(server_id=0, queue_seconds=0.0, start_s=now_s)

    def release(self, admission: Admission, now_s: float) -> None:
        pass


class ExecutionBackend:
    """One way of executing an offload target's invocation."""

    name = "backend"

    def estimate(self, target: OffloadTarget) -> Optional["GainEstimate"]:
        """The gain of executing ``target`` on this backend (None when
        the backend has no gain model — local execution is the
        baseline every estimate is relative to)."""
        raise NotImplementedError

    def execute(self, target: OffloadTarget, interp: Interpreter,
                args: List):
        """Run one invocation of ``target``; returns its return value."""
        raise NotImplementedError

    def abort(self, target: OffloadTarget, interp: Interpreter,
              args: List, record: InvocationRecord) -> None:
        """Tear down a failed invocation (no-op for backends without
        distributed state)."""
        raise NotImplementedError


class LocalBackend(ExecutionBackend):
    """Execute the target on the mobile device itself.

    The invocation runs on a sub-interpreter sharing the suspended
    interpreter's stack pointer — a fresh interpreter would start at
    stack_top and clobber the live frames of the suspended caller.  Its
    cycles are charged (unscaled) to the main interpreter so the run is
    ordinary mobile compute time on the timeline and in the energy
    model, and its observer feeds the dynamic estimator an observed
    local execution time for the target.
    """

    name = "local"

    def __init__(self, session: "OffloadSession"):
        self.session = session

    def estimate(self, target: OffloadTarget) -> Optional["GainEstimate"]:
        return None  # local execution is the gain baseline

    def execute(self, target: OffloadTarget, interp: Interpreter,
                args: List, record: Optional[InvocationRecord] = None):
        session = self.session
        fn = session.mobile.module.function(target.name)
        sub = Interpreter(session.mobile, observer=interp.observer,
                          max_instructions=session.options.max_instructions)
        sub.sp = interp.sp
        result = sub.call_function(fn, args)
        interp.charge_raw_cycles(sub.cycles)
        session._replay_instructions += sub.instruction_count
        if record is not None:
            record.fallback_local = True
            record.local_seconds = sub.time_seconds
        tr = session.tracer
        if tr.enabled:
            tr.emit("offload.fallback", target.name,
                    seconds=sub.time_seconds,
                    instructions=sub.instruction_count)
            tr.metrics.counter("offload.fallbacks").inc()
        return result

    def abort(self, target: OffloadTarget, interp: Interpreter,
              args: List, record: InvocationRecord) -> None:
        pass  # nothing distributed to tear down


class RemoteBackend(ExecutionBackend):
    """The full offload protocol of the paper's Figure 5, over the
    session's transport/UVA/communication stack."""

    name = "remote"

    def __init__(self, session: "OffloadSession",
                 dispatcher: Optional[OffloadDispatcher] = None):
        self.session = session
        # None (the default) is the dedicated-server fast path: no
        # admission bookkeeping at all, preserving bit-identical
        # single-session arithmetic.  Fleet runs substitute a pooled
        # dispatcher here.
        self.dispatcher = dispatcher

    def estimate(self, target: OffloadTarget) -> Optional["GainEstimate"]:
        return self.session.estimator.estimate(target)

    # -- the offload protocol -----------------------------------------
    def execute(self, target: OffloadTarget, interp: Interpreter,
                args: List):
        session = self.session
        opts = session.options
        zero = opts.zero_overhead
        tr = session.tracer
        session._mark_compute()
        record = InvocationRecord(target=target.name, offloaded=True)
        comm_before = session.comm.stats
        bytes_s0 = comm_before.bytes_to_server
        bytes_m0 = comm_before.bytes_to_mobile
        faults0 = session.uva.stats.cod_faults

        # ---- admission (fleet only) -------------------------------
        admission: Optional[Admission] = None
        if self.dispatcher is not None:
            outcome = self.dispatcher.admit(target.name, session.now())
            if isinstance(outcome, Rejection):
                return self._rejected(target, interp, args, record,
                                      outcome)
            admission = outcome
            record.server_id = admission.server_id
            record.tier = admission.tier
            record.deadline_s = admission.deadline_s
            record.priority = admission.priority
            if admission.queue_seconds > 0.0:
                record.queue_seconds = admission.queue_seconds
                if tr.enabled:
                    tr.emit("offload.queue", target.name,
                            dur=admission.queue_seconds,
                            server=admission.server_id)
                    tr.metrics.counter("offload.queue_seconds").inc(
                        admission.queue_seconds)
                if not zero:
                    session._advance(admission.queue_seconds, "queue")

        # ---- tier network override (docs/placement.md) ------------
        # A cloud-tier admission carries the WAN NetworkModel the
        # device must talk through for this invocation.  Swap it in
        # for the protocol body and restore the device's own link
        # afterwards — the finally runs even when the body returns
        # through the abort/local-fallback paths.
        override = admission.network if admission is not None else None
        if override is None or override is session.network:
            return self._offload_protocol(target, interp, args, record,
                                          admission, bytes_s0, bytes_m0,
                                          faults0)
        saved = session.network
        session.network = override
        session.comm.set_network(override)
        try:
            return self._offload_protocol(target, interp, args, record,
                                          admission, bytes_s0, bytes_m0,
                                          faults0)
        finally:
            session.network = saved
            session.comm.set_network(saved)

    def _offload_protocol(self, target: OffloadTarget, interp: Interpreter,
                          args: List, record: InvocationRecord,
                          admission: Optional[Admission],
                          bytes_s0: int, bytes_m0: int, faults0: int):
        """The admitted protocol body: init → server exec → finalize.

        Runs under the admitting tier's network override when one is in
        effect; ``admission.speed`` divides server compute time (a 1.0
        speed is a bit-exact no-op)."""
        session = self.session
        opts = session.options
        zero = opts.zero_overhead
        tr = session.tracer
        speed = admission.speed if admission is not None else 1.0

        # Observable-state snapshot for abort-and-replay: remote I/O
        # mutates the mobile environment mid-execution, so a failed
        # invocation must roll those effects back before the local
        # replay.  Only taken on a faulty link — the fault-free path
        # does no extra work (the zero-fault no-op invariant).
        io_snapshot = (session.mobile.io.snapshot()
                       if session._faulty else None)
        if tr.enabled:
            prefetch_pages0 = session.uva.stats.prefetched_pages
            fnptr_seconds0 = session.fnptr_seconds
            fnptr_lookups0 = session._fnptr_lookups
            writeback_pages0 = session.uva.stats.written_back_pages
            writeback_bytes0 = session.uva.stats.written_back_bytes

        # ---- initialization (Figure 5) ----------------------------
        # One batched message carries the offload request, the page
        # table, the allocator state and the prefetched pages.
        session.uva.begin_invocation(target.name)
        comm_phase0 = session.comm.stats.comm_seconds
        session.comm.begin_batch(to_server=True)
        try:
            init_seconds = session.uva.synchronize_page_table()
            init_seconds += session.uva.push_allocator_state()
            if opts.enable_prefetch:
                init_seconds += session.uva.prefetch(
                    session._prefetch_pages(target.name, interp.sp))
            # offload request: target id, stack pointer, argument regs
            request = 32 + 16 * len(args)
            init_seconds += session.comm.send_to_server(
                [b"\x00" * request]).seconds
            init_seconds += session.comm.flush_batch().seconds
        except LinkDownError:
            return self._abort(
                target, interp, args, record, "init",
                session.comm.stats.comm_seconds - comm_phase0,
                "transmit", io_snapshot, admission)
        if zero:
            init_seconds = 0.0
        record.init_seconds = init_seconds
        if tr.enabled:
            tr.emit("offload.init", target.name, dur=init_seconds,
                    prefetch_pages=(session.uva.stats.prefetched_pages
                                    - prefetch_pages0),
                    bytes_to_server=(session.comm.stats.bytes_to_server
                                     - bytes_s0),
                    args=len(args))
            tr.metrics.counter("offload.invocations").inc()
            tr.metrics.histogram("offload.init_seconds").observe(
                init_seconds)
        session._advance(init_seconds, "transmit",
                         session.meter.transmit_power(
                             0.9, session.network.slow))

        # ---- offloading execution ---------------------------------
        session.server.memory.clear_dirty()
        server_interp = Interpreter(
            session.server, max_instructions=opts.max_instructions)
        session._current_server_interp = server_interp
        rio0 = session._rio_pending
        session._rio_pending = 0.0
        cod0 = session.uva.stats.cod_seconds
        comm_phase0 = session.comm.stats.comm_seconds
        fn = session.server.module.function(target.name)
        try:
            result = server_interp.call_function(fn, args)
        except LinkDownError:
            # A CoD fault or remote I/O burst hit a dead link while the
            # server was computing.  The partial server work is real
            # wall time the mobile device waited through; charge it,
            # then abort and replay.
            session._current_server_interp = None
            session._rio_pending = rio0
            partial = server_interp.time_seconds
            if speed != 1.0:
                partial /= speed
            record.server_seconds = partial
            session.server_instructions += server_interp.instruction_count
            session.server_compute_seconds += partial
            if not zero:
                session._advance(partial, "wait")
            return self._abort(
                target, interp, args, record, "exec",
                session.comm.stats.comm_seconds - comm_phase0,
                "receive", io_snapshot, admission)
        session._current_server_interp = None
        cod_seconds = (0.0 if zero
                       else session.uva.stats.cod_seconds - cod0)
        rio_seconds = session._rio_pending
        session._rio_pending = rio0
        server_seconds = server_interp.time_seconds
        if speed != 1.0:
            server_seconds /= speed
        session.server_instructions += server_interp.instruction_count
        session.server_compute_seconds += server_seconds
        record.server_seconds = server_seconds
        record.cod_seconds = cod_seconds
        record.remote_io_seconds = rio_seconds
        if tr.enabled:
            tr.emit("offload.exec", target.name, dur=server_seconds,
                    instructions=server_interp.instruction_count,
                    cod_faults=session.uva.stats.cod_faults - faults0,
                    cod_seconds=cod_seconds,
                    remote_io_seconds=rio_seconds)
            tr.metrics.histogram("offload.server_seconds").observe(
                server_seconds)
            fnptr_lookups = session._fnptr_lookups - fnptr_lookups0
            if fnptr_lookups:
                tr.emit("fnptr.window", target.name,
                        lookups=fnptr_lookups,
                        seconds=session.fnptr_seconds - fnptr_seconds0)
                tr.metrics.counter("fnptr.lookups").inc(fnptr_lookups)
        # the mobile waits while the server computes; it receives during
        # CoD transfers and services remote I/O bursts
        session._advance(server_seconds, "wait")
        session._advance(cod_seconds, "receive")
        session._advance(rio_seconds, "remote_io")

        # ---- finalization -----------------------------------------
        # One batched, compressed message carries the termination
        # signal, the return value, the dirty pages and the allocator
        # state.  Transactional: the dirty pages and allocator state are
        # staged (defer_commit) and applied only after the whole message
        # survives the transport — a mid-finalize link death leaves
        # mobile memory untouched (abort-and-replay invariant,
        # DESIGN.md §5).
        comm_phase0 = session.comm.stats.comm_seconds
        session.comm.begin_batch(to_server=False)
        try:
            fin_seconds, _ = session.uva.write_back(defer_commit=True)
            fin_seconds += session.uva.pull_allocator_state(
                defer_commit=True)
            fin_seconds += session.comm.send_to_mobile(
                [b"\x00" * 64]).seconds
            fin_seconds += session.comm.flush_batch().seconds
        except LinkDownError:
            return self._abort(
                target, interp, args, record, "finalize",
                session.comm.stats.comm_seconds - comm_phase0,
                "receive", io_snapshot, admission)
        session.uva.commit_finalize()
        session.uva.end_invocation()
        if zero:
            fin_seconds = 0.0
        record.finalize_seconds = fin_seconds
        if tr.enabled:
            tr.emit("offload.finalize", target.name, dur=fin_seconds,
                    writeback_pages=(session.uva.stats.written_back_pages
                                     - writeback_pages0),
                    writeback_bytes=(session.uva.stats.written_back_bytes
                                     - writeback_bytes0),
                    bytes_to_server=(session.comm.stats.bytes_to_server
                                     - bytes_s0),
                    bytes_to_mobile=(session.comm.stats.bytes_to_mobile
                                     - bytes_m0))
            tr.metrics.histogram("offload.finalize_seconds").observe(
                fin_seconds)
        session._advance(fin_seconds, "receive")

        record.bytes_to_server = (session.comm.stats.bytes_to_server
                                  - bytes_s0)
        record.bytes_to_mobile = (session.comm.stats.bytes_to_mobile
                                  - bytes_m0)
        record.cod_faults = session.uva.stats.cod_faults - faults0
        if session.predictor is not None:
            if init_seconds > 0:
                session.predictor.observe_transfer(record.bytes_to_server,
                                                   init_seconds)
            if fin_seconds > 0:
                session.predictor.observe_transfer(record.bytes_to_mobile,
                                                   fin_seconds)
        session.invocations.append(record)
        session.estimator.record_offload_traffic(
            target.name, record.traffic_bytes)
        self._release(admission)
        return result

    # -- admission refused: degrade to local execution ----------------
    def _rejected(self, target: OffloadTarget, interp: Interpreter,
                  args: List, record: InvocationRecord,
                  rejection: Rejection):
        """Every eligible server queue was full.  The refused request
        still cost one control round trip on the link; charge it, teach
        the estimator the pool is saturated, and run the target on the
        mobile device (docs/fleet.md, "Admission control")."""
        session = self.session
        record.offloaded = False
        record.rejected = True
        probe = 0.0
        if not session.options.zero_overhead:
            probe = session.network.round_trip_time(16, 16)
            session._advance(probe, "wait")
        record.wasted_seconds = probe
        session.estimator.record_pool_rejection(
            rejection.estimated_wait_s)
        tr = session.tracer
        if tr.enabled:
            tr.emit("offload.reject", target.name,
                    estimated_wait_s=rejection.estimated_wait_s,
                    probe_seconds=probe)
            tr.metrics.counter("offload.rejections").inc()
        session.invocations.append(record)
        return session.local_backend.execute(target, interp, args, record)

    # -- mid-invocation failure: abort and replay locally --------------
    def abort(self, target: OffloadTarget, interp: Interpreter,
              args: List, record: InvocationRecord) -> None:
        """Tear down the distributed state of a failed invocation:
        discard the staged batch and every server-side effect."""
        session = self.session
        session._current_server_interp = None
        session.comm.discard_batch()
        session.uva.abort_invocation()

    def _abort(self, target: OffloadTarget, interp: Interpreter,
               args: List, record: InvocationRecord, phase: str,
               wasted_seconds: float, power_state: str,
               io_snapshot: Optional[dict],
               admission: Optional[Admission]):
        """The transport declared the link dead mid-invocation: discard
        every server-side effect, roll the mobile environment back to
        its pre-invocation state, charge the wasted wall time and replay
        the target locally (docs/fault-model.md, "Fallback
        semantics")."""
        session = self.session
        record.offloaded = False
        record.aborted = True
        record.abort_phase = phase
        record.wasted_seconds = wasted_seconds
        self.abort(target, interp, args, record)
        if io_snapshot is not None:
            session.mobile.io.restore(io_snapshot)
        if not session.options.zero_overhead:
            # "transmit" has no flat power figure: its draw scales with
            # link utilization, exactly as on the successful init path.
            power_mw = (session.meter.transmit_power(
                            0.9, session.network.slow)
                        if power_state == "transmit" else None)
            session._advance(wasted_seconds, power_state, power_mw)
        session.estimator.record_offload_failure(target.name)
        self._release(admission)
        tr = session.tracer
        if tr.enabled:
            # server_seconds: partial server execution a mid-exec abort
            # already charged into server_compute_seconds — without it
            # here the trace could not reconcile that total
            # (repro.trace.analysis.spans.validate_sessions).
            tr.emit("offload.abort", target.name, phase=phase,
                    wasted_seconds=wasted_seconds,
                    server_seconds=record.server_seconds)
            tr.metrics.counter("offload.aborts").inc()
            tr.metrics.counter("offload.wasted_seconds").inc(
                wasted_seconds)
        session.invocations.append(record)
        return session.local_backend.execute(target, interp, args, record)

    def _release(self, admission: Optional[Admission]) -> None:
        """Hand the server slot back and feed the observed queueing
        delay into the estimator (the contention feedback loop of
        docs/fleet.md)."""
        if admission is None or self.dispatcher is None:
            return
        session = self.session
        self.dispatcher.release(admission, session.now())
        session.estimator.record_queue_delay(
            admission.server_id, admission.queue_seconds,
            speed=admission.speed)
