"""Execution backends: the seam between *deciding* where an offload
target runs and the machinery that actually runs it.

Historically :class:`repro.runtime.session.OffloadSession` hard-wired the
whole offload protocol — initialization, server execution, finalization,
abort-and-replay — inside one private method, which made it impossible to
point the same session logic at anything other than its single dedicated
server.  This module extracts that machinery behind a small protocol:

* :class:`ExecutionBackend` — the surface every backend implements:
  ``estimate`` (what would running here gain?), ``execute`` (run one
  invocation of a target) and ``abort`` (tear down a failed invocation).
* :class:`LocalBackend` — executes the target on the mobile device using
  a sub-interpreter that shares the suspended caller's stack.  Used for
  the replay after a mid-invocation link failure and for invocations the
  server pool refuses to admit.
* :class:`RemoteBackend` — the full offload protocol over the
  transport/UVA/communication stack, bit-identical to the pre-seam
  session (guarded by the differential test in ``tests/test_fleet.py``).

The remote backend additionally consults an :class:`OffloadDispatcher`
before starting an invocation.  The default (``dispatcher=None`` — the
paper's one-device/one-server world) performs no admission work at all;
a fleet run substitutes a dispatcher wired to a shared
:class:`repro.fleet.pool.ServerPool`, so admission can carry a queueing
delay (charged to the device timeline and battery exactly as link time
is) or be refused outright, in which case the invocation degrades to
:class:`LocalBackend` (docs/fleet.md).  The event-driven
:class:`repro.fleet.scheduler.FleetScheduler` supplies a
:class:`repro.fleet.replay.ScriptedDispatcher` that replays recorded
pool outcomes into the session; sessions only ever read the
session-visible fields of an :class:`Admission` (``server_id``,
``queue_seconds``, and the heterogeneous-pool fields ``speed`` /
``network`` / ``tier`` / ``deadline_s`` / ``priority``) and the
``estimated_wait_s`` of a :class:`Rejection`, which is what makes that
replay exact (docs/simulator.md, "Replay, not resumption").

Heterogeneous pools (docs/placement.md): an admission may carry a
``speed`` multiplier — server compute time divides by it — and a
``network`` override, under which every byte of the invocation travels
the admitting tier's link (a cloud server is fast-far: big ``speed``,
WAN network).  Both default to no-ops, keeping the single-session and
homogeneous-fleet arithmetic bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, TYPE_CHECKING

from ..machine.interpreter import Interpreter
from ..offload.partition import OffloadTarget
from ..offload.shard import contiguous_ranges
from .transport import LinkDownError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .dynamic_estimator import GainEstimate
    from .session import OffloadSession


@dataclass
class InvocationRecord:
    """Accounting for one dynamic offload decision site execution."""

    target: str
    offloaded: bool
    init_seconds: float = 0.0
    server_seconds: float = 0.0
    cod_seconds: float = 0.0
    remote_io_seconds: float = 0.0
    fnptr_seconds: float = 0.0
    finalize_seconds: float = 0.0
    bytes_to_server: int = 0
    bytes_to_mobile: int = 0
    cod_faults: int = 0
    local_seconds: float = 0.0
    # Mid-invocation failure accounting: an aborted invocation burned
    # `wasted_seconds` on the dead link in `abort_phase`
    # (init/exec/finalize), then replayed the target locally
    # (`fallback_local`).
    aborted: bool = False
    abort_phase: Optional[str] = None
    fallback_local: bool = False
    wasted_seconds: float = 0.0
    # Fleet accounting (docs/fleet.md): time spent queued for a server
    # slot, which server served the invocation, and whether the pool
    # refused admission (the invocation then ran locally).
    queue_seconds: float = 0.0
    server_id: Optional[int] = None
    rejected: bool = False
    # Placement accounting (docs/placement.md): the tier that served
    # the invocation, and the deadline/priority the request carried
    # into the pool's decision engine.
    tier: Optional[str] = None
    deadline_s: Optional[float] = None
    priority: bool = False
    # Scatter/gather plan accounting (docs/parallel-offload.md): how
    # many index-range shards served the invocation, which servers they
    # landed on, the iteration count each carried, the parallel wall
    # time the mobile actually waited (max surviving shard), and how
    # many shards were abandoned and replayed locally.
    shards: int = 1
    shard_servers: Optional[List[int]] = None
    shard_sizes: Optional[List[int]] = None
    shard_wall_seconds: float = 0.0
    stragglers: int = 0

    @property
    def traffic_bytes(self) -> int:
        return self.bytes_to_server + self.bytes_to_mobile


@dataclass(frozen=True)
class Admission:
    """A granted server slot for one offload invocation.

    Sessions read ``server_id``, ``queue_seconds`` and the
    heterogeneous-pool echo fields (``speed``, ``network``, ``tier``,
    ``deadline_s``, ``priority``); ``start_s``/``token`` are pool
    bookkeeping.  The event-driven fleet scheduler's replay correctness
    depends on that split
    (:class:`repro.fleet.replay.OutcomeProjection`) — a backend change
    that makes sessions consume more of this object must extend the
    projection too.
    """

    server_id: int = 0
    queue_seconds: float = 0.0    # time the device waits before service
    start_s: float = 0.0          # global fleet time service begins
    token: object = None          # pool-internal reservation handle
    # Heterogeneous-pool fields (docs/placement.md).  speed divides
    # server compute time; network, when set, is the admitting tier's
    # link the comm layer uses for the whole invocation.  tier /
    # deadline_s / priority are echoes for InvocationRecord accounting.
    speed: float = 1.0
    network: object = None        # NetworkModel override or None
    tier: Optional[str] = None
    deadline_s: Optional[float] = None
    priority: bool = False


@dataclass(frozen=True)
class Rejection:
    """Admission refused: every eligible queue was full."""

    estimated_wait_s: float = 0.0  # the wait the job would have faced


def _signed32(value: int) -> int:
    """A machine-word argument register as the i32 loop bound it is."""
    value &= 0xFFFFFFFF
    return value - (1 << 32) if value >= (1 << 31) else value


class OffloadDispatcher:
    """Where :class:`RemoteBackend` asks for a server.

    ``admit`` receives the target name and the *session-local* current
    time and returns an :class:`Admission` or a :class:`Rejection`;
    ``release`` hands the slot back at the session-local end time.  Fleet
    dispatchers translate session-local time to global fleet time by
    adding the device's start offset.
    """

    def admit(self, target_name: str, now_s: float):
        raise NotImplementedError

    def admit_gang(self, target_name: str, now_s: float, shards: int):
        """Ask for up to ``shards`` zero-wait slots for one
        scatter/gather plan (docs/parallel-offload.md).

        Returns a list of admissions — possibly fewer than requested,
        the degrade-to-fewer ladder — or a :class:`Rejection`.  The
        default degrades straight to a single classic admission, so
        dispatchers that predate plans behave exactly as before.
        """
        outcome = self.admit(target_name, now_s)
        if isinstance(outcome, Rejection):
            return outcome
        return [outcome]

    def release(self, admission: Admission, now_s: float) -> None:
        raise NotImplementedError


class DirectDispatcher(OffloadDispatcher):
    """The paper's dedicated server: admission is immediate and free."""

    def admit(self, target_name: str, now_s: float) -> Admission:
        return Admission(server_id=0, queue_seconds=0.0, start_s=now_s)

    def admit_gang(self, target_name: str, now_s: float,
                   shards: int) -> List[Admission]:
        # The dedicated server runs every shard itself; the plan's
        # speedup model is k slots of the same machine.
        return [Admission(server_id=0, queue_seconds=0.0, start_s=now_s)
                for _ in range(shards)]

    def release(self, admission: Admission, now_s: float) -> None:
        pass


class ExecutionBackend:
    """One way of executing an offload target's invocation."""

    name = "backend"

    def estimate(self, target: OffloadTarget) -> Optional["GainEstimate"]:
        """The gain of executing ``target`` on this backend (None when
        the backend has no gain model — local execution is the
        baseline every estimate is relative to)."""
        raise NotImplementedError

    def execute(self, target: OffloadTarget, interp: Interpreter,
                args: List):
        """Run one invocation of ``target``; returns its return value."""
        raise NotImplementedError

    def abort(self, target: OffloadTarget, interp: Interpreter,
              args: List, record: InvocationRecord) -> None:
        """Tear down a failed invocation (no-op for backends without
        distributed state)."""
        raise NotImplementedError


class LocalBackend(ExecutionBackend):
    """Execute the target on the mobile device itself.

    The invocation runs on a sub-interpreter sharing the suspended
    interpreter's stack pointer — a fresh interpreter would start at
    stack_top and clobber the live frames of the suspended caller.  Its
    cycles are charged (unscaled) to the main interpreter so the run is
    ordinary mobile compute time on the timeline and in the energy
    model, and its observer feeds the dynamic estimator an observed
    local execution time for the target.
    """

    name = "local"

    def __init__(self, session: "OffloadSession"):
        self.session = session

    def estimate(self, target: OffloadTarget) -> Optional["GainEstimate"]:
        return None  # local execution is the gain baseline

    def execute(self, target: OffloadTarget, interp: Interpreter,
                args: List, record: Optional[InvocationRecord] = None):
        session = self.session
        fn = session.mobile.module.function(target.name)
        sub = Interpreter(session.mobile, observer=interp.observer,
                          max_instructions=session.options.max_instructions)
        sub.sp = interp.sp
        result = sub.call_function(fn, args)
        interp.charge_raw_cycles(sub.cycles)
        session._replay_instructions += sub.instruction_count
        if record is not None:
            record.fallback_local = True
            record.local_seconds = sub.time_seconds
        tr = session.tracer
        if tr.enabled:
            tr.emit("offload.fallback", target.name,
                    seconds=sub.time_seconds,
                    instructions=sub.instruction_count)
            tr.metrics.counter("offload.fallbacks").inc()
        return result

    def abort(self, target: OffloadTarget, interp: Interpreter,
              args: List, record: InvocationRecord) -> None:
        pass  # nothing distributed to tear down


class RemoteBackend(ExecutionBackend):
    """The full offload protocol of the paper's Figure 5, over the
    session's transport/UVA/communication stack."""

    name = "remote"

    def __init__(self, session: "OffloadSession",
                 dispatcher: Optional[OffloadDispatcher] = None):
        self.session = session
        # None (the default) is the dedicated-server fast path: no
        # admission bookkeeping at all, preserving bit-identical
        # single-session arithmetic.  Fleet runs substitute a pooled
        # dispatcher here.
        self.dispatcher = dispatcher

    def estimate(self, target: OffloadTarget) -> Optional["GainEstimate"]:
        return self.session.estimator.estimate(target)

    # -- the offload protocol -----------------------------------------
    def execute(self, target: OffloadTarget, interp: Interpreter,
                args: List):
        session = self.session
        opts = session.options
        zero = opts.zero_overhead
        tr = session.tracer
        session._mark_compute()
        record = InvocationRecord(target=target.name, offloaded=True)
        comm_before = session.comm.stats
        bytes_s0 = comm_before.bytes_to_server
        bytes_m0 = comm_before.bytes_to_mobile
        faults0 = session.uva.stats.cod_faults

        # ---- scatter/gather plan gating ---------------------------
        # A shardable target with shards > 1 requested asks for a gang
        # of zero-wait slots and scatters its index range across them
        # (docs/parallel-offload.md).  Every other outcome — target not
        # shardable, trip count too small, gang degraded to one slot —
        # falls through to the classic single-server path below, which
        # keeps k=1 byte-identical to the pre-plan protocol.
        admission: Optional[Admission] = None
        plan = self._plan_shards(target, args)
        if plan is not None:
            spec, trip = plan
            k = min(opts.shards, trip)
            if self.dispatcher is None:
                gang = [Admission(server_id=0, queue_seconds=0.0,
                                  start_s=session.now())
                        for _ in range(k)]
            else:
                gang = self.dispatcher.admit_gang(target.name,
                                                  session.now(), k)
            if isinstance(gang, Rejection):
                return self._rejected(target, interp, args, record, gang)
            members = None
            if len(gang) >= 2:
                sizes = session.estimator.plan_shard_sizes(trip, gang)
                members = []
                for adm, rng in zip(gang,
                                    contiguous_ranges(spec.iv_init,
                                                      sizes)):
                    if rng[1] > rng[0]:
                        members.append((adm, rng))
                    else:
                        # a zero share: hand the slot straight back
                        self._release(adm)
                if len(members) < 2:
                    gang = [m[0] for m in members]
                    members = None
            if members is not None:
                return self._plan_protocol(target, interp, args, record,
                                           spec, members, bytes_s0,
                                           bytes_m0, faults0)
            admission = gang[0]
        elif self.dispatcher is not None:
            outcome = self.dispatcher.admit(target.name, session.now())
            if isinstance(outcome, Rejection):
                return self._rejected(target, interp, args, record,
                                      outcome)
            admission = outcome
        if admission is not None:
            record.server_id = admission.server_id
            record.tier = admission.tier
            record.deadline_s = admission.deadline_s
            record.priority = admission.priority
            if admission.queue_seconds > 0.0:
                record.queue_seconds = admission.queue_seconds
                if tr.enabled:
                    tr.emit("offload.queue", target.name,
                            dur=admission.queue_seconds,
                            server=admission.server_id)
                    tr.metrics.counter("offload.queue_seconds").inc(
                        admission.queue_seconds)
                if not zero:
                    session._advance(admission.queue_seconds, "queue")

        # ---- tier network override (docs/placement.md) ------------
        # A cloud-tier admission carries the WAN NetworkModel the
        # device must talk through for this invocation.  Swap it in
        # for the protocol body and restore the device's own link
        # afterwards — the finally runs even when the body returns
        # through the abort/local-fallback paths.
        override = admission.network if admission is not None else None
        if override is None or override is session.network:
            return self._offload_protocol(target, interp, args, record,
                                          admission, bytes_s0, bytes_m0,
                                          faults0)
        saved = session.network
        session.network = override
        session.comm.set_network(override)
        try:
            return self._offload_protocol(target, interp, args, record,
                                          admission, bytes_s0, bytes_m0,
                                          faults0)
        finally:
            session.network = saved
            session.comm.set_network(saved)

    def _offload_protocol(self, target: OffloadTarget, interp: Interpreter,
                          args: List, record: InvocationRecord,
                          admission: Optional[Admission],
                          bytes_s0: int, bytes_m0: int, faults0: int):
        """The admitted protocol body: init → server exec → finalize.

        Runs under the admitting tier's network override when one is in
        effect; ``admission.speed`` divides server compute time (a 1.0
        speed is a bit-exact no-op)."""
        session = self.session
        opts = session.options
        zero = opts.zero_overhead
        tr = session.tracer
        speed = admission.speed if admission is not None else 1.0

        # Observable-state snapshot for abort-and-replay: remote I/O
        # mutates the mobile environment mid-execution, so a failed
        # invocation must roll those effects back before the local
        # replay.  Only taken on a faulty link — the fault-free path
        # does no extra work (the zero-fault no-op invariant).
        io_snapshot = (session.mobile.io.snapshot()
                       if session._faulty else None)
        if tr.enabled:
            prefetch_pages0 = session.uva.stats.prefetched_pages
            fnptr_seconds0 = session.fnptr_seconds
            fnptr_lookups0 = session._fnptr_lookups
            writeback_pages0 = session.uva.stats.written_back_pages
            writeback_bytes0 = session.uva.stats.written_back_bytes

        # ---- initialization (Figure 5) ----------------------------
        # One batched message carries the offload request, the page
        # table, the allocator state and the prefetched pages.
        session.uva.begin_invocation(target.name)
        comm_phase0 = session.comm.stats.comm_seconds
        session.comm.begin_batch(to_server=True)
        try:
            init_seconds = session.uva.synchronize_page_table()
            init_seconds += session.uva.push_allocator_state()
            if opts.enable_prefetch:
                init_seconds += session.uva.prefetch(
                    session._prefetch_pages(target.name, interp.sp))
            # offload request: target id, stack pointer, argument regs
            request = 32 + 16 * len(args)
            init_seconds += session.comm.send_to_server(
                [b"\x00" * request]).seconds
            init_seconds += session.comm.flush_batch().seconds
        except LinkDownError:
            return self._abort(
                target, interp, args, record, "init",
                session.comm.stats.comm_seconds - comm_phase0,
                "transmit", io_snapshot, admission)
        if zero:
            init_seconds = 0.0
        record.init_seconds = init_seconds
        if tr.enabled:
            tr.emit("offload.init", target.name, dur=init_seconds,
                    prefetch_pages=(session.uva.stats.prefetched_pages
                                    - prefetch_pages0),
                    bytes_to_server=(session.comm.stats.bytes_to_server
                                     - bytes_s0),
                    args=len(args))
            tr.metrics.counter("offload.invocations").inc()
            tr.metrics.histogram("offload.init_seconds").observe(
                init_seconds)
        session._advance(init_seconds, "transmit",
                         session.meter.transmit_power(
                             0.9, session.network.slow))

        # ---- offloading execution ---------------------------------
        session.server.memory.clear_dirty()
        server_interp = Interpreter(
            session.server, max_instructions=opts.max_instructions)
        session._current_server_interp = server_interp
        rio0 = session._rio_pending
        session._rio_pending = 0.0
        cod0 = session.uva.stats.cod_seconds
        comm_phase0 = session.comm.stats.comm_seconds
        fn = session.server.module.function(target.name)
        try:
            result = server_interp.call_function(fn, args)
        except LinkDownError:
            # A CoD fault or remote I/O burst hit a dead link while the
            # server was computing.  The partial server work is real
            # wall time the mobile device waited through; charge it,
            # then abort and replay.
            session._current_server_interp = None
            session._rio_pending = rio0
            partial = server_interp.time_seconds
            if speed != 1.0:
                partial /= speed
            record.server_seconds = partial
            session.server_instructions += server_interp.instruction_count
            session.server_compute_seconds += partial
            if not zero:
                session._advance(partial, "wait")
            return self._abort(
                target, interp, args, record, "exec",
                session.comm.stats.comm_seconds - comm_phase0,
                "receive", io_snapshot, admission)
        session._current_server_interp = None
        cod_seconds = (0.0 if zero
                       else session.uva.stats.cod_seconds - cod0)
        rio_seconds = session._rio_pending
        session._rio_pending = rio0
        server_seconds = server_interp.time_seconds
        if speed != 1.0:
            server_seconds /= speed
        session.server_instructions += server_interp.instruction_count
        session.server_compute_seconds += server_seconds
        record.server_seconds = server_seconds
        record.cod_seconds = cod_seconds
        record.remote_io_seconds = rio_seconds
        if tr.enabled:
            tr.emit("offload.exec", target.name, dur=server_seconds,
                    instructions=server_interp.instruction_count,
                    cod_faults=session.uva.stats.cod_faults - faults0,
                    cod_seconds=cod_seconds,
                    remote_io_seconds=rio_seconds)
            tr.metrics.histogram("offload.server_seconds").observe(
                server_seconds)
            fnptr_lookups = session._fnptr_lookups - fnptr_lookups0
            if fnptr_lookups:
                tr.emit("fnptr.window", target.name,
                        lookups=fnptr_lookups,
                        seconds=session.fnptr_seconds - fnptr_seconds0)
                tr.metrics.counter("fnptr.lookups").inc(fnptr_lookups)
        # the mobile waits while the server computes; it receives during
        # CoD transfers and services remote I/O bursts
        session._advance(server_seconds, "wait")
        session._advance(cod_seconds, "receive")
        session._advance(rio_seconds, "remote_io")

        # ---- finalization -----------------------------------------
        # One batched, compressed message carries the termination
        # signal, the return value, the dirty pages and the allocator
        # state.  Transactional: the dirty pages and allocator state are
        # staged (defer_commit) and applied only after the whole message
        # survives the transport — a mid-finalize link death leaves
        # mobile memory untouched (abort-and-replay invariant,
        # DESIGN.md §5).
        comm_phase0 = session.comm.stats.comm_seconds
        session.comm.begin_batch(to_server=False)
        try:
            fin_seconds, _ = session.uva.write_back(defer_commit=True)
            fin_seconds += session.uva.pull_allocator_state(
                defer_commit=True)
            fin_seconds += session.comm.send_to_mobile(
                [b"\x00" * 64]).seconds
            fin_seconds += session.comm.flush_batch().seconds
        except LinkDownError:
            return self._abort(
                target, interp, args, record, "finalize",
                session.comm.stats.comm_seconds - comm_phase0,
                "receive", io_snapshot, admission)
        session.uva.commit_finalize()
        session.uva.end_invocation()
        if zero:
            fin_seconds = 0.0
        record.finalize_seconds = fin_seconds
        if tr.enabled:
            tr.emit("offload.finalize", target.name, dur=fin_seconds,
                    writeback_pages=(session.uva.stats.written_back_pages
                                     - writeback_pages0),
                    writeback_bytes=(session.uva.stats.written_back_bytes
                                     - writeback_bytes0),
                    bytes_to_server=(session.comm.stats.bytes_to_server
                                     - bytes_s0),
                    bytes_to_mobile=(session.comm.stats.bytes_to_mobile
                                     - bytes_m0))
            tr.metrics.histogram("offload.finalize_seconds").observe(
                fin_seconds)
        session._advance(fin_seconds, "receive")

        record.bytes_to_server = (session.comm.stats.bytes_to_server
                                  - bytes_s0)
        record.bytes_to_mobile = (session.comm.stats.bytes_to_mobile
                                  - bytes_m0)
        record.cod_faults = session.uva.stats.cod_faults - faults0
        if session.predictor is not None:
            if init_seconds > 0:
                session.predictor.observe_transfer(record.bytes_to_server,
                                                   init_seconds)
            if fin_seconds > 0:
                session.predictor.observe_transfer(record.bytes_to_mobile,
                                                   fin_seconds)
        session.invocations.append(record)
        session.estimator.record_offload_traffic(
            target.name, record.traffic_bytes)
        self._release(admission)
        return result

    # -- scatter/gather plans (docs/parallel-offload.md) ---------------
    def _plan_shards(self, target: OffloadTarget, args: List):
        """The ``(spec, trip_count)`` of a scatterable invocation, or
        None to degrade to the classic single-server path: the target
        was not proven shardable at compile time, the session did not
        ask for shards, or the runtime trip count is too small to
        split."""
        session = self.session
        if session.options.shards <= 1:
            return None
        spec = session.program.shard_specs.get(target.name)
        if spec is None:
            return None
        trip = spec.static_trip_count()
        if trip is None:
            if spec.bound_global is not None:
                addr = session.mobile.address_of_global(spec.bound_global)
                bound = int.from_bytes(
                    session.mobile.memory.read(addr, 4), "little",
                    signed=True)
            else:
                bound = _signed32(int(args[spec.bound_arg]))
            trip = max(0, bound - spec.iv_init)
        if trip < 2:
            return None
        return spec, trip

    def _plan_protocol(self, target: OffloadTarget, interp: Interpreter,
                       args: List, record: InvocationRecord,
                       spec, members, bytes_s0: int, bytes_m0: int,
                       faults0: int):
        """One invocation as k index-range shards: scatter, per-shard
        server execution, straggler replay, gather-and-merge.

        Every shard runs the compile-time ``__no_shard_`` wrapper over
        its own ``[lo, hi)`` slice of the loop's index range.  The
        shards of a plan share the invocation's read-only pages through
        the ordinary UVA copy-on-demand machinery and write disjoint
        index ranges (the shard analysis proves stores are affine in
        the induction variable), so their dirty deltas merge without
        conflict at gather time.  The mobile device charges scatter
        once, waits through the *slowest surviving* shard (that is the
        whole speedup), receives every CoD transfer and the gathered
        deltas, and replays abandoned shards locally on the mobile copy
        of the wrapper.  Shardable targets cannot call, so there is no
        remote I/O, no function-pointer window and no allocator state
        to pull back — the gather carries dirty pages and a termination
        record only."""
        session = self.session
        opts = session.options
        zero = opts.zero_overhead
        tr = session.tracer
        admissions = [m[0] for m in members]
        ranges = [m[1] for m in members]
        k = len(members)
        record.shards = k
        record.shard_servers = [a.server_id for a in admissions]
        record.shard_sizes = [hi - lo for lo, hi in ranges]

        io_snapshot = (session.mobile.io.snapshot()
                       if session._faulty else None)
        if tr.enabled:
            prefetch_pages0 = session.uva.stats.prefetched_pages

        # ---- scatter ----------------------------------------------
        # One batched message carries the page table, the allocator
        # state, the prefetched pages and one offload request per
        # shard (target id, stack pointer, argument registers plus the
        # shard's [lo, hi) bounds).  The simulated link is a single
        # medium, so the scatter is broadcast-priced: shards on
        # different servers still share the one uplink.
        session.uva.begin_invocation(target.name)
        comm_phase0 = session.comm.stats.comm_seconds
        session.comm.begin_batch(to_server=True)
        try:
            scatter_s = session.uva.synchronize_page_table()
            scatter_s += session.uva.push_allocator_state()
            if opts.enable_prefetch:
                scatter_s += session.uva.prefetch(
                    session._prefetch_pages(target.name, interp.sp))
            request = (32 + 16 * (len(args) + 2)) * k
            scatter_s += session.comm.send_to_server(
                [b"\x00" * request]).seconds
            scatter_s += session.comm.flush_batch().seconds
        except LinkDownError:
            return self._abort(
                target, interp, args, record, "scatter",
                session.comm.stats.comm_seconds - comm_phase0,
                "transmit", io_snapshot, admissions)
        if zero:
            scatter_s = 0.0
        record.init_seconds = scatter_s
        if tr.enabled:
            tr.emit("offload.scatter", target.name, dur=scatter_s,
                    shards=k,
                    ranges=[list(rng) for rng in ranges],
                    prefetch_pages=(session.uva.stats.prefetched_pages
                                    - prefetch_pages0),
                    bytes_to_server=(session.comm.stats.bytes_to_server
                                     - bytes_s0),
                    args=len(args))
            tr.metrics.counter("offload.invocations").inc()
            tr.metrics.counter("offload.plans").inc()
            tr.metrics.histogram("offload.init_seconds").observe(
                scatter_s)
        session._advance(scatter_s, "transmit",
                         session.meter.transmit_power(
                             0.9, session.network.slow))

        # ---- per-shard server execution ---------------------------
        # The simulator has one server Machine; shard executions run on
        # it sequentially and the parallel wall time is reconstructed
        # analytically below (max over surviving shards).  Each shard's
        # dirty pages are captured and staged between executions so the
        # shards never observe each other's writes — exactly the
        # isolation k independent servers would give.
        injected = frozenset(opts.shard_faults or ())
        wrapper_fn = session.server.module.function(spec.wrapper)
        comm_phase0 = session.comm.stats.comm_seconds
        executions: List[Optional[dict]] = []
        server_interp: Optional[Interpreter] = None
        admission: Optional[Admission] = None
        try:
            for index, (admission, (lo, hi)) in enumerate(members):
                if index in injected:
                    # injected shard fault: this server never answered
                    executions.append(None)
                    server_interp = None
                    continue
                session.server.memory.clear_dirty()
                server_interp = Interpreter(
                    session.server,
                    max_instructions=opts.max_instructions)
                session._current_server_interp = server_interp
                cod_before = session.uva.stats.cod_seconds
                faults_before = session.uva.stats.cod_faults
                server_interp.call_function(wrapper_fn,
                                            list(args) + [lo, hi])
                session._current_server_interp = None
                session.server_instructions += (
                    server_interp.instruction_count)
                exec_s = server_interp.time_seconds
                if admission.speed != 1.0:
                    exec_s /= admission.speed
                cap_idx, payloads = session.uva.capture_shard_writeback()
                executions.append({
                    "exec": exec_s,
                    "instructions": server_interp.instruction_count,
                    "cod": (0.0 if zero
                            else session.uva.stats.cod_seconds
                            - cod_before),
                    "faults": (session.uva.stats.cod_faults
                               - faults_before),
                    "capture": cap_idx,
                    "payloads": payloads,
                })
        except LinkDownError:
            # A CoD fault hit a dead link mid-shard.  Every shard
            # executed so far — including the partial one — is real
            # server work the mobile waited through in parallel: charge
            # the max as wall time, account the sum as server compute,
            # and report the overlap so the trace buckets reconcile.
            session._current_server_interp = None
            executed = [e["exec"] for e in executions if e]
            if server_interp is not None:
                partial = server_interp.time_seconds
                if admission is not None and admission.speed != 1.0:
                    partial /= admission.speed
                session.server_instructions += (
                    server_interp.instruction_count)
                executed.append(partial)
            total_exec = sum(executed)
            wall = max(executed, default=0.0)
            record.server_seconds = total_exec
            record.shard_wall_seconds = wall
            session.server_compute_seconds += total_exec
            if not zero:
                session._advance(wall, "wait")
            return self._abort(
                target, interp, args, record, "exec",
                session.comm.stats.comm_seconds - comm_phase0,
                "receive", io_snapshot, admissions,
                overlap_seconds=max(total_exec - wall, 0.0))

        # ---- straggler decision -----------------------------------
        # A shard is a straggler when its fault was injected or when it
        # ran longer than straggler_factor x the fastest shard.  Its
        # captured delta is discarded (never applied, never priced) and
        # its index range is replayed locally after the merge; a *late*
        # straggler's server time is wasted work, not wall time.
        done = [e["exec"] for e in executions if e]
        fastest = min(done) if done else 0.0
        factor = opts.straggler_factor
        stragglers = []
        for index, entry in enumerate(executions):
            if entry is None:
                stragglers.append(index)
            elif factor > 0.0 and entry["exec"] > factor * fastest:
                stragglers.append(index)
        straggler_set = frozenset(stragglers)
        for index in stragglers:
            entry = executions[index]
            if entry is not None:
                session.uva.discard_shard_writeback(entry["capture"])
                record.wasted_seconds += entry["exec"]
        record.stragglers = len(stragglers)
        survivors = [i for i in range(k) if i not in straggler_set]

        # ---- survivors become the invocation's server compute -----
        wall_wait = 0.0
        server_total = 0.0
        cod_total = 0.0
        for index in survivors:
            entry = executions[index]
            wall_wait = max(wall_wait, entry["exec"])
            server_total += entry["exec"]
        for entry in executions:
            if entry is not None:
                cod_total += entry["cod"]
        overlap = max(server_total - wall_wait, 0.0)
        session.server_compute_seconds += server_total
        record.server_seconds = server_total
        record.cod_seconds = cod_total
        record.shard_wall_seconds = wall_wait
        if tr.enabled:
            for index in survivors:
                entry = executions[index]
                lo, hi = ranges[index]
                tr.emit("offload.exec", target.name, dur=entry["exec"],
                        shard=index, lo=lo, hi=hi,
                        server=admissions[index].server_id,
                        instructions=entry["instructions"],
                        cod_faults=entry["faults"],
                        cod_seconds=entry["cod"])
                tr.metrics.histogram("offload.server_seconds").observe(
                    entry["exec"])

        # ---- gather ----------------------------------------------
        # One batched, compressed message per the finalize discipline:
        # every surviving shard's staged dirty delta plus a single
        # termination record.  Transactional exactly as finalize is —
        # a mid-gather link death leaves mobile memory untouched and
        # the whole target replays locally (DESIGN.md §5).
        comm_phase0 = session.comm.stats.comm_seconds
        session.comm.begin_batch(to_server=False)
        gather_s = 0.0
        try:
            for index in survivors:
                entry = executions[index]
                if entry["payloads"]:
                    gather_s += session.comm.send_to_mobile(
                        entry["payloads"]).seconds
            gather_s += session.comm.send_to_mobile(
                [b"\x00" * 64]).seconds
            gather_s += session.comm.flush_batch().seconds
        except LinkDownError:
            # the parallel wait already happened before the gather
            if not zero:
                session._advance(wall_wait, "wait")
                session._advance(cod_total, "receive")
            return self._abort(
                target, interp, args, record, "gather",
                session.comm.stats.comm_seconds - comm_phase0,
                "receive", io_snapshot, admissions,
                abort_server_seconds=0.0, overlap_seconds=overlap)
        session.uva.stats.writeback_seconds += gather_s
        if zero:
            gather_s = 0.0
        record.finalize_seconds = gather_s
        # the mobile waits through the slowest surviving shard, then
        # receives every CoD transfer and the gathered deltas
        session._advance(wall_wait, "wait")
        session._advance(cod_total, "receive")
        session._advance(gather_s, "receive")
        session.uva.commit_finalize()
        session.uva.end_invocation()

        # ---- straggler local replay -------------------------------
        # After the survivors' deltas are merged, each abandoned index
        # range re-executes on the mobile copy of the wrapper, charged
        # as ordinary mobile compute (time and energy).  The replay
        # writes the same elements a healthy shard would have, which
        # also re-dirties those pages mobile-side — the next
        # synchronization invalidates any stale server copy.
        replay_total = 0.0
        if stragglers:
            mobile_wrapper = session.mobile.module.function(spec.wrapper)
            for index in stragglers:
                lo, hi = ranges[index]
                sub = Interpreter(
                    session.mobile, observer=interp.observer,
                    max_instructions=opts.max_instructions)
                sub.sp = interp.sp
                sub.call_function(mobile_wrapper, list(args) + [lo, hi])
                interp.charge_raw_cycles(sub.cycles)
                session._replay_instructions += sub.instruction_count
                replay_total += sub.time_seconds
                if tr.enabled:
                    tr.emit("offload.straggler", target.name,
                            dur=sub.time_seconds,
                            seconds=sub.time_seconds,
                            shard=index, lo=lo, hi=hi,
                            reason=("fault" if index in injected
                                    else "late"),
                            instructions=sub.instruction_count)
                    tr.metrics.counter("offload.stragglers").inc()
            record.local_seconds = replay_total

        # offload.gather closes the invocation span; overlap_seconds
        # is what the parallel wait saved versus serial execution and
        # is what lets the critical-path buckets sum to charged wall.
        if tr.enabled:
            tr.emit("offload.gather", target.name, dur=gather_s,
                    shards=k, survivors=len(survivors),
                    stragglers=len(stragglers),
                    overlap_seconds=overlap,
                    bytes_to_mobile=(session.comm.stats.bytes_to_mobile
                                     - bytes_m0))
            tr.metrics.histogram("offload.finalize_seconds").observe(
                gather_s)

        record.bytes_to_server = (session.comm.stats.bytes_to_server
                                  - bytes_s0)
        record.bytes_to_mobile = (session.comm.stats.bytes_to_mobile
                                  - bytes_m0)
        record.cod_faults = session.uva.stats.cod_faults - faults0
        if session.predictor is not None:
            if scatter_s > 0:
                session.predictor.observe_transfer(record.bytes_to_server,
                                                   scatter_s)
            if gather_s > 0:
                session.predictor.observe_transfer(record.bytes_to_mobile,
                                                   gather_s)
        session.invocations.append(record)
        session.estimator.record_offload_traffic(
            target.name, record.traffic_bytes)
        self._release(admissions)
        return spec.ret_const

    # -- admission refused: degrade to local execution ----------------
    def _rejected(self, target: OffloadTarget, interp: Interpreter,
                  args: List, record: InvocationRecord,
                  rejection: Rejection):
        """Every eligible server queue was full.  The refused request
        still cost one control round trip on the link; charge it, teach
        the estimator the pool is saturated, and run the target on the
        mobile device (docs/fleet.md, "Admission control")."""
        session = self.session
        record.offloaded = False
        record.rejected = True
        probe = 0.0
        if not session.options.zero_overhead:
            probe = session.network.round_trip_time(16, 16)
            session._advance(probe, "wait")
        record.wasted_seconds = probe
        session.estimator.record_pool_rejection(
            rejection.estimated_wait_s)
        tr = session.tracer
        if tr.enabled:
            tr.emit("offload.reject", target.name,
                    estimated_wait_s=rejection.estimated_wait_s,
                    probe_seconds=probe)
            tr.metrics.counter("offload.rejections").inc()
        session.invocations.append(record)
        return session.local_backend.execute(target, interp, args, record)

    # -- mid-invocation failure: abort and replay locally --------------
    def abort(self, target: OffloadTarget, interp: Interpreter,
              args: List, record: InvocationRecord) -> None:
        """Tear down the distributed state of a failed invocation:
        discard the staged batch and every server-side effect."""
        session = self.session
        session._current_server_interp = None
        session.comm.discard_batch()
        session.uva.abort_invocation()

    def _abort(self, target: OffloadTarget, interp: Interpreter,
               args: List, record: InvocationRecord, phase: str,
               wasted_seconds: float, power_state: str,
               io_snapshot: Optional[dict],
               admission,
               abort_server_seconds: Optional[float] = None,
               overlap_seconds: float = 0.0):
        """The transport declared the link dead mid-invocation: discard
        every server-side effect, roll the mobile environment back to
        its pre-invocation state, charge the wasted wall time and replay
        the target locally (docs/fault-model.md, "Fallback
        semantics")."""
        session = self.session
        record.offloaded = False
        record.aborted = True
        record.abort_phase = phase
        record.wasted_seconds = wasted_seconds
        self.abort(target, interp, args, record)
        if io_snapshot is not None:
            session.mobile.io.restore(io_snapshot)
        if not session.options.zero_overhead:
            # "transmit" has no flat power figure: its draw scales with
            # link utilization, exactly as on the successful init path.
            power_mw = (session.meter.transmit_power(
                            0.9, session.network.slow)
                        if power_state == "transmit" else None)
            session._advance(wasted_seconds, power_state, power_mw)
        session.estimator.record_offload_failure(target.name)
        self._release(admission)
        tr = session.tracer
        if tr.enabled:
            # server_seconds: partial server execution a mid-exec abort
            # already charged into server_compute_seconds — without it
            # here the trace could not reconcile that total
            # (repro.trace.analysis.spans.validate_sessions).  A plan
            # abort after its shards' offload.exec events were emitted
            # overrides it to zero (the events already carry the
            # compute) and reports the parallel overlap so the
            # critical-path buckets still sum to charged wall.
            payload = dict(
                phase=phase, wasted_seconds=wasted_seconds,
                server_seconds=(record.server_seconds
                                if abort_server_seconds is None
                                else abort_server_seconds))
            if record.shards > 1:
                payload["shards"] = record.shards
                payload["overlap_seconds"] = overlap_seconds
            tr.emit("offload.abort", target.name, **payload)
            tr.metrics.counter("offload.aborts").inc()
            tr.metrics.counter("offload.wasted_seconds").inc(
                wasted_seconds)
        session.invocations.append(record)
        return session.local_backend.execute(target, interp, args, record)

    def _release(self, admission) -> None:
        """Hand the server slot(s) back and feed the observed queueing
        delay into the estimator (the contention feedback loop of
        docs/fleet.md).  Accepts a single :class:`Admission`, a gang
        (list of admissions — a plan releases every member at the same
        session-local instant), or None."""
        if admission is None or self.dispatcher is None:
            return
        session = self.session
        members = (admission if isinstance(admission, list)
                   else [admission])
        now_s = session.now()
        for member in members:
            self.dispatcher.release(member, now_s)
            session.estimator.record_queue_delay(
                member.server_id, member.queue_seconds,
                speed=member.speed)
