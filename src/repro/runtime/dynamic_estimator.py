"""Dynamic performance estimation (paper, Sections 3.3 and 4).

Unlike the compile-time estimator, the runtime decides per invocation using
*current* conditions: the live network bandwidth, observed task execution
times and observed data volumes.  This is what lets Native Offloader
decline to offload 164.gzip-style tasks on a slow network instead of
suffering a slowdown (Figure 6, the ``*`` entries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..offload.partition import OffloadTarget
from ..profiler.profile_data import ProfileData
from ..trace import NULL_TRACER, Tracer
from .network import NetworkModel
from .prediction import BandwidthPredictor
from .transport import Transport

# After an aborted invocation the target sits out at most this many
# decisions, however many failures it has accumulated.
MAX_FAILURE_COOLDOWN = 8


@dataclass
class TargetRuntimeState:
    """Per-target observations refined as the program runs."""

    observed_local_seconds: Optional[float] = None
    observed_traffic_bytes: Optional[float] = None
    # Warm-path traffic: the incremental UVA data plane makes repeat
    # offloads much cheaper than the first (page cache + deltas), so the
    # first observation is kept apart as the cold figure and subsequent
    # invocations are smoothed here.  Estimates prefer the warm figure —
    # it is the one that predicts the *next* invocation.
    warm_traffic_bytes: Optional[float] = None
    decisions: int = 0
    offloads: int = 0
    # Link-failure awareness: aborted invocations put the target on an
    # exponentially growing decision cooldown (see record_offload_failure).
    failures: int = 0
    cooldown: int = 0
    # After an abort the next successful offload pays cold-path traffic
    # again (the abort rollback purged the page cache), so its volume
    # must replace the cold figure rather than pollute the warm EWMA.
    cold_restart: bool = False


@dataclass
class GainEstimate:
    """Equation 1 evaluated with run-time values, kept component-wise so
    the trace can record *why* a decision came out the way it did."""

    t_mobile: float           # (observed or profiled) local seconds
    memory_bytes: float       # (observed or profiled) transfer volume
    t_ideal: float            # compute saving at the current ratio
    bandwidth: float          # bytes/s used for the comm term
    t_comm: float             # 2 * memory / bandwidth
    gain: float               # t_ideal - t_comm - t_queue
    observed_time: bool       # True when t_mobile came from observation
    observed_traffic: bool    # True when memory came from observation
    # Expected server-pool queueing delay (0 outside fleet runs): the
    # paper's Equation 1 generalized to contention — waiting for a slot
    # costs the mobile exactly like waiting on the link does.
    t_queue: float = 0.0


class DynamicPerformanceEstimator:
    def __init__(self, profile: ProfileData,
                 performance_ratio: float,
                 network: NetworkModel,
                 predictor: Optional[BandwidthPredictor] = None,
                 tracer: Optional[Tracer] = None,
                 transport: Optional[Transport] = None):
        self.profile = profile
        self.performance_ratio = performance_ratio
        self.network = network
        # Optional NWSLite-style forecaster (paper, Section 6): when set,
        # Equation 1 uses the *predicted* bandwidth of the live link
        # instead of its nominal rate.
        self.predictor = predictor
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Failure awareness: when the transport reports the link dead
        # with no prospect of reconnecting, every decision is a decline —
        # Equation 1 is moot on a link that cannot carry the traffic.
        self.transport = transport
        self.state: Dict[str, TargetRuntimeState] = {}
        self.last_estimate: Optional[GainEstimate] = None
        self.last_reason: Optional[str] = None
        # Contention awareness (fleet runs): observed queueing delay per
        # server id, EWMA-smoothed, plus the wait quoted by admission
        # rejections.  Both stay empty in single-session runs, keeping
        # t_queue identically zero there.
        self.queue_delay_ewma: Dict[int, float] = {}
        self.rejection_wait_ewma: Optional[float] = None
        self.pool_rejections: int = 0
        # Heterogeneous-pool awareness (docs/placement.md): the speed
        # multiplier observed per server id, so Equation 1's compute
        # saving reflects the server the device actually lands on.
        # Empty outside fleet runs — the effective ratio is then the
        # base performance_ratio, bit-identically.
        self.server_speed: Dict[int, float] = {}

    def _state(self, name: str) -> TargetRuntimeState:
        return self.state.setdefault(name, TargetRuntimeState())

    # -- observations --------------------------------------------------
    def record_local_time(self, name: str, seconds: float) -> None:
        self._state(name).observed_local_seconds = seconds

    def record_offload_traffic(self, name: str, bytes_moved: float) -> None:
        state = self._state(name)
        # A completed offload proves the link carries traffic again.
        state.failures = 0
        state.cooldown = 0
        if state.cold_restart:
            # First success after an abort: the rollback purged the page
            # cache, so this volume is a cold figure — refresh it and
            # leave the warm EWMA describing steady-state invocations.
            state.observed_traffic_bytes = bytes_moved
            state.cold_restart = False
        elif state.observed_traffic_bytes is None:
            state.observed_traffic_bytes = bytes_moved
        elif state.warm_traffic_bytes is None:
            state.warm_traffic_bytes = bytes_moved
        else:  # exponential smoothing across warm invocations
            state.warm_traffic_bytes = (
                0.5 * state.warm_traffic_bytes + 0.5 * bytes_moved)

    def record_offload_failure(self, name: str) -> None:
        """An invocation of this target aborted on a dead link; sit out
        an exponentially growing number of decisions before retrying."""
        state = self._state(name)
        state.failures += 1
        state.cold_restart = True
        state.cooldown = min(2 ** (state.failures - 1),
                             MAX_FAILURE_COOLDOWN)
        if self.tracer.enabled:
            self.tracer.emit("estimate", name, gain_seconds=None,
                             failure_cooldown=state.cooldown,
                             failures=state.failures)

    def record_queue_delay(self, server_id: int, seconds: float,
                           speed: float = 1.0) -> None:
        """One admission completed: fold the observed slot wait into the
        per-server EWMA (0 seconds is an observation too — it is how an
        idle pool talks a device back into offloading).  ``speed`` is
        the serving spec's multiplier; the latest observation wins
        because a server's speed is static for its lifetime."""
        self.server_speed[server_id] = speed
        prev = self.queue_delay_ewma.get(server_id)
        if prev is None:
            self.queue_delay_ewma[server_id] = seconds
        else:
            self.queue_delay_ewma[server_id] = 0.5 * prev + 0.5 * seconds

    def record_pool_rejection(self, estimated_wait_s: float) -> None:
        """The pool refused admission outright, quoting the wait it
        would have imposed; treat the quote as an observed delay."""
        self.pool_rejections += 1
        if self.rejection_wait_ewma is None:
            self.rejection_wait_ewma = estimated_wait_s
        else:
            self.rejection_wait_ewma = (
                0.5 * self.rejection_wait_ewma + 0.5 * estimated_wait_s)

    def expected_queue_seconds(self) -> float:
        """The queueing-delay term of the generalized Equation 1.

        The dispatcher routes each request to the least-loaded server,
        so the expectation is the *best* per-server EWMA — but a pool
        that has been refusing admission is worse than its completed
        admissions suggest, so the rejection quote acts as a floor.
        """
        expected = 0.0
        if self.queue_delay_ewma:
            expected = min(self.queue_delay_ewma.values())
        if self.rejection_wait_ewma is not None:
            expected = max(expected, self.rejection_wait_ewma)
        return expected

    def plan_shard_sizes(self, total_iters: int, admissions) -> List[int]:
        """Resource-aware shard sizing for a scatter/gather plan (Elf's
        multi-offloading scheme; docs/parallel-offload.md).

        Each admitted server gets iterations proportional to its
        effective service rate: its speed multiplier damped by the
        queue-delay EWMA observed at that server (a saturated server is
        expected to start late, so it gets a proportionally smaller
        shard).  Apportionment is largest-remainder with a deterministic
        index tie-break, so same history + same admissions => same
        sizes.  A size may be 0 (the caller drops that shard and
        releases its admission immediately).
        """
        if total_iters <= 0 or not admissions:
            return [0 for _ in admissions]
        weights = []
        for admission in admissions:
            delay = max(self.queue_delay_ewma.get(
                admission.server_id, 0.0), 0.0)
            weights.append(max(admission.speed, 1e-9) / (1.0 + delay))
        total_weight = sum(weights)
        shares = [total_iters * w / total_weight for w in weights]
        sizes = [int(share) for share in shares]
        remainder = total_iters - sum(sizes)
        order = sorted(range(len(shares)),
                       key=lambda i: (-(shares[i] - sizes[i]), i))
        for i in order[:remainder]:
            sizes[i] += 1
        return sizes

    def expected_server_speed(self) -> float:
        """Speed multiplier of the server the next offload is expected
        to land on: the one behind the best queue-delay EWMA (the same
        server ``expected_queue_seconds`` bets on).  1.0 with no fleet
        history — the single-session no-op."""
        if not self.queue_delay_ewma:
            return 1.0
        best = min(self.queue_delay_ewma.items(),
                   key=lambda item: (item[1], item[0]))[0]
        return self.server_speed.get(best, 1.0)

    # -- the decision -------------------------------------------------
    def estimate(self, target: OffloadTarget) -> GainEstimate:
        """Per-invocation Equation 1 with run-time values, componentwise."""
        state = self._state(target.name)
        prof = self.profile.candidates.get(target.name)
        observed_time = state.observed_local_seconds is not None
        t_mobile = state.observed_local_seconds
        if t_mobile is None:
            t_mobile = (prof.seconds_per_invocation
                        if prof is not None and prof.invocations else 0.0)
        observed_traffic = state.observed_traffic_bytes is not None
        memory = (state.warm_traffic_bytes
                  if state.warm_traffic_bytes is not None
                  else state.observed_traffic_bytes)
        if memory is None:
            memory = float(prof.memory_bytes) if prof is not None else 0.0
        # The server the request is expected to land on may be faster
        # than the paper's reference (speed > 1); a 1.0 speed leaves
        # the ratio bit-identical to the single-server arithmetic.
        ratio = self.performance_ratio * self.expected_server_speed()
        t_ideal = t_mobile * (1.0 - 1.0 / ratio)
        bandwidth = self.network.bandwidth_bytes_per_s
        if self.predictor is not None:
            bandwidth = self.predictor.predict_bps(
                self.network.bandwidth_bps) / 8.0
        t_comm = 2.0 * memory / bandwidth
        t_queue = self.expected_queue_seconds()
        return GainEstimate(t_mobile=t_mobile, memory_bytes=memory,
                            t_ideal=t_ideal, bandwidth=bandwidth,
                            t_comm=t_comm,
                            gain=t_ideal - t_comm - t_queue,
                            observed_time=observed_time,
                            observed_traffic=observed_traffic,
                            t_queue=t_queue)

    def estimate_gain(self, target: OffloadTarget) -> float:
        """Per-invocation Equation 1 with run-time values."""
        return self.estimate(target).gain

    def should_offload(self, target: OffloadTarget) -> bool:
        state = self._state(target.name)
        state.decisions += 1
        if self.transport is not None and not self.transport.usable:
            self.last_estimate = None
            self.last_reason = "link_down"
            return False
        if state.cooldown > 0:
            state.cooldown -= 1
            self.last_estimate = None
            self.last_reason = "failure_backoff"
            return False
        est = self.estimate(target)
        self.last_estimate = est
        if self.tracer.enabled:
            self.tracer.emit(
                "estimate", target.name, gain_seconds=est.gain,
                t_mobile=est.t_mobile, t_ideal=est.t_ideal,
                t_comm=est.t_comm, t_queue=est.t_queue,
                memory_bytes=est.memory_bytes,
                bandwidth_bytes_per_s=est.bandwidth,
                observed_time=est.observed_time,
                observed_traffic=est.observed_traffic)
        if est.gain > 0:
            state.offloads += 1
            self.last_reason = "positive_gain"
            return True
        # Tell contention apart from a plain bad trade: the offload
        # would have paid off on an idle pool but the expected slot wait
        # eats the saving, so the device degrades to local execution.
        if est.t_queue > 0 and est.gain + est.t_queue > 0:
            self.last_reason = "queue_pressure"
        else:
            self.last_reason = "negative_gain"
        return False
