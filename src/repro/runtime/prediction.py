"""Bandwidth prediction (NWSLite-style) — the paper's suggested extension.

Section 6 points at Wolski et al. and NWSLite: "With these prediction
algorithms, the Native Offloader compiler and runtime can predict the
performance more precisely."  NWSLite keeps a small ensemble of cheap
forecasters over the observed transfer history and, for each prediction,
uses the forecaster with the lowest recent error — robust on the
non-stationary bandwidth of real wireless links.

:class:`BandwidthPredictor` implements that scheme over the transfer
samples the communication manager produces; the dynamic performance
estimator consumes its forecasts instead of the link's nominal bandwidth
when prediction is enabled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

# Transfers smaller than this tell us more about latency than bandwidth.
MIN_SAMPLE_BYTES = 2048


class _Forecaster:
    name = "base"

    def predict(self) -> Optional[float]:
        raise NotImplementedError

    def observe(self, value: float) -> None:
        raise NotImplementedError


class _LastValue(_Forecaster):
    name = "last"

    def __init__(self):
        self._last: Optional[float] = None

    def predict(self) -> Optional[float]:
        return self._last

    def observe(self, value: float) -> None:
        self._last = value


class _RunningMean(_Forecaster):
    name = "mean"

    def __init__(self):
        self._sum = 0.0
        self._count = 0

    def predict(self) -> Optional[float]:
        if not self._count:
            return None
        return self._sum / self._count

    def observe(self, value: float) -> None:
        self._sum += value
        self._count += 1


class _Ewma(_Forecaster):
    def __init__(self, alpha: float):
        self.name = f"ewma{alpha:.2f}"
        self.alpha = alpha
        self._value: Optional[float] = None

    def predict(self) -> Optional[float]:
        return self._value

    def observe(self, value: float) -> None:
        if self._value is None:
            self._value = value
        else:
            self._value = (self.alpha * value
                           + (1.0 - self.alpha) * self._value)


class _SlidingMedian(_Forecaster):
    name = "median"

    def __init__(self, window: int = 15):
        self._window: Deque[float] = deque(maxlen=window)

    def predict(self) -> Optional[float]:
        if not self._window:
            return None
        ordered = sorted(self._window)
        return ordered[len(ordered) // 2]

    def observe(self, value: float) -> None:
        self._window.append(value)


@dataclass
class PredictionRecord:
    forecaster: str
    predicted_bps: float
    observed_bps: float

    @property
    def relative_error(self) -> float:
        if self.observed_bps <= 0:
            return 0.0
        return abs(self.predicted_bps - self.observed_bps) / \
            self.observed_bps


class BandwidthPredictor:
    """NWSLite-style adaptive ensemble over observed transfer rates."""

    def __init__(self, error_window: int = 10):
        self.forecasters: List[_Forecaster] = [
            _LastValue(), _RunningMean(), _Ewma(0.25), _Ewma(0.6),
            _SlidingMedian(),
        ]
        self._errors = {f.name: deque(maxlen=error_window)
                        for f in self.forecasters}
        self.history: List[PredictionRecord] = []
        self.samples = 0

    # -- feeding observations ------------------------------------------
    def observe_transfer(self, payload_bytes: int, seconds: float) -> None:
        """Record one completed transfer (payload bytes over elapsed
        time).  Tiny control messages are ignored — they measure latency,
        not bandwidth."""
        if payload_bytes < MIN_SAMPLE_BYTES or seconds <= 0:
            return
        observed_bps = payload_bytes * 8.0 / seconds
        best = self._best_forecaster()
        predicted = best.predict() if best is not None else None
        if predicted is not None:
            record = PredictionRecord(best.name, predicted, observed_bps)
            self.history.append(record)
        for forecaster in self.forecasters:
            prior = forecaster.predict()
            if prior is not None:
                self._errors[forecaster.name].append(
                    abs(prior - observed_bps) / max(observed_bps, 1.0))
            forecaster.observe(observed_bps)
        self.samples += 1

    # -- producing predictions ---------------------------------------
    def _best_forecaster(self) -> Optional[_Forecaster]:
        candidates = [f for f in self.forecasters
                      if f.predict() is not None]
        if not candidates:
            return None

        def mean_error(f: _Forecaster) -> float:
            errs = self._errors[f.name]
            if not errs:
                return float("inf") if f.name != "last" else 1.0
            return sum(errs) / len(errs)

        return min(candidates, key=mean_error)

    def predict_bps(self, fallback_bps: float) -> float:
        """Forecast the next transfer's bandwidth; falls back to the
        link's nominal rate until enough samples exist."""
        if self.samples < 2:
            return fallback_bps
        best = self._best_forecaster()
        predicted = best.predict() if best is not None else None
        return predicted if predicted else fallback_bps

    @property
    def mean_relative_error(self) -> float:
        if not self.history:
            return 0.0
        return (sum(r.relative_error for r in self.history)
                / len(self.history))
