"""Pure-local execution baseline.

Figure 6 normalizes every configuration to local execution on the
smartphone; this helper runs an (unmodified or partitioned-mobile) module
on one machine with time and battery accounting and no offloading.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..ir.module import Module
from ..machine.energy import EnergyMeter, PowerTrace
from ..machine.fs import IOEnvironment
from ..machine.interpreter import Interpreter
from ..machine.libc import install_libc
from ..machine.machine import Machine
from ..offload.unify import unified_data_layout
from ..targets.arch import TargetArch
from ..targets.presets import ARM32


@dataclass
class LocalRunResult:
    seconds: float
    energy_mj: float
    exit_code: int
    stdout: str
    instructions: int
    power_trace: PowerTrace


def run_local(module: Module,
              arch: TargetArch = ARM32,
              role: str = "mobile",
              stdin: bytes = b"",
              files: Optional[Dict[str, bytes]] = None,
              page_size: int = 4096,
              power_mw: Optional[Dict[str, float]] = None,
              max_instructions: int = 500_000_000) -> LocalRunResult:
    """Execute a module start-to-finish on a single machine."""
    machine = Machine(arch, role,
                      io=IOEnvironment(files=files, stdin=stdin),
                      page_size=page_size)
    machine.set_layout(unified_data_layout(module, arch))
    install_libc(machine)
    machine.load(module)
    interp = Interpreter(machine, max_instructions=max_instructions)
    exit_code = interp.run_main()
    meter = EnergyMeter(power_mw)
    seconds = interp.time_seconds
    meter.charge(0.0, seconds, "compute")
    return LocalRunResult(
        seconds=seconds,
        energy_mj=meter.total_energy_mj,
        exit_code=exit_code,
        stdout=machine.io.stdout_text(),
        instructions=interp.instruction_count,
        power_trace=meter.trace,
    )
