"""Communication manager: batching and compression (paper, Section 4).

All mobile<->server traffic funnels through one :class:`CommunicationManager`
so the runtime can (a) batch many page payloads into one network message,
amortizing per-message overheads, and (b) compress server-to-mobile
payloads with a real codec (zlib).  Compression is applied only in the
server-to-mobile direction, exactly as in the paper: compressing on the
slow mobile CPU would cost more than it saves, while mobile-side
*decompression* is cheap.

The manager is the top of the layered communication stack
(docs/fault-model.md): it frames and shapes traffic, then hands every
message to a :class:`repro.runtime.transport.Transport` for delivery.
When the transport declares the link dead mid-delivery
(:class:`repro.runtime.transport.LinkDownError`), the manager charges the
burned time to ``stats.comm_seconds`` — the timeline must reflect every
simulated second, including failed ones — and re-raises so the session
can abort the invocation and fall back to local execution.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..trace import NULL_TRACER, Tracer
from .network import FaultPlan, Link, MESSAGE_HEADER_BYTES, NetworkModel
from .transport import LinkDownError, RetryPolicy, Transport

# Cost model for the codec itself (cycles per byte on the executing core).
COMPRESS_CYCLES_PER_BYTE = 12.0     # server-side deflate
DECOMPRESS_CYCLES_PER_BYTE = 3.0    # mobile-side inflate
PER_ITEM_HEADER_BYTES = 16          # per-batched-item framing
STREAM_OP_OVERHEAD_S = 25e-6        # per-op cost of pipelined output I/O

# Per-record framing of one (offset, length) sub-page delta record
# (docs/uva-data-plane.md).  The framing lives here with the rest of the
# wire layout: the UVA layer decides *what* to diff, the communication
# layer owns how a record looks on the wire.
DELTA_RECORD_HEADER_BYTES = 8


def delta_records_size(records) -> int:
    """Wire size of a sub-page delta: per-record header + patch bytes."""
    return sum(DELTA_RECORD_HEADER_BYTES + len(data)
               for _, data in records)


def encode_delta_records(records) -> bytes:
    """The wire form of a delta: per-record framing plus the patch bytes
    themselves (real content, so one-way compression still applies)."""
    return b"".join(b"\x00" * DELTA_RECORD_HEADER_BYTES + data
                    for _, data in records)


@dataclass
class CommStats:
    messages: int = 0
    bytes_to_server: int = 0          # uncompressed payload
    bytes_to_mobile: int = 0
    wire_bytes_to_server: int = 0     # after framing
    wire_bytes_to_mobile: int = 0     # after compression + framing
    compression_saved_bytes: int = 0
    comm_seconds: float = 0.0
    compression_seconds: float = 0.0

    @property
    def total_payload_bytes(self) -> int:
        return self.bytes_to_server + self.bytes_to_mobile


@dataclass
class TransferResult:
    seconds: float
    wire_bytes: int
    payload_bytes: int


class CommunicationManager:
    def __init__(self, network: NetworkModel,
                 enable_batching: bool = True,
                 enable_compression: bool = True,
                 server_clock_hz: float = 3.6e9,
                 mobile_clock_hz: float = 2.5e9,
                 tracer: Optional[Tracer] = None,
                 transport: Optional[Transport] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        self.network = network
        self.enable_batching = enable_batching
        self.enable_compression = enable_compression
        self.server_clock_hz = server_clock_hz
        self.mobile_clock_hz = mobile_clock_hz
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if transport is None:
            transport = Transport(Link(network, fault_plan),
                                  policy=retry_policy, tracer=self.tracer)
        self.transport = transport
        self.stats = CommStats()
        self._active_batch = None  # (to_server, payload list) or None

    def set_network(self, network: NetworkModel) -> None:
        """Re-point the comm path at a different link profile.

        Used by the fleet's tiered pools (docs/placement.md): a
        cloud-tier admission swaps the device onto the tier's WAN for
        the invocation and swaps the original link back afterwards.
        The :class:`~repro.runtime.network.Link` reads its network at
        transmit time, so the swap takes effect immediately; fault
        plans and transport retry state carry over unchanged.
        """
        self.network = network
        self.transport.link.network = network

    # -- explicit batching windows --------------------------------------
    def begin_batch(self, to_server: bool) -> None:
        """Open a batching window: subsequent sends in this direction are
        accumulated and shipped as one message by :meth:`flush_batch`.
        A no-op when batching is disabled."""
        if self.enable_batching:
            self._active_batch = (to_server, [])

    def flush_batch(self) -> TransferResult:
        if self._active_batch is None:
            return TransferResult(0.0, 0, 0)
        to_server, payloads = self._active_batch
        self._active_batch = None
        if not payloads:
            return TransferResult(0.0, 0, 0)
        return self._send(payloads, to_server=to_server)

    def discard_batch(self) -> None:
        """Drop an open batching window without transmitting — the abort
        path of a failed invocation."""
        self._active_batch = None

    # -- mobile -> server -------------------------------------------------
    def send_to_server(self, payloads: List[bytes]) -> TransferResult:
        """Send payload items from the mobile device to the server.

        With batching, all items travel in one message; without it, each
        item pays its own message latency and header.
        """
        return self._send(payloads, to_server=True)

    # -- server -> mobile (compressed) ---------------------------------
    def send_to_mobile(self, payloads: List[bytes]) -> TransferResult:
        return self._send(payloads, to_server=False)

    def _send(self, payloads: List[bytes], to_server: bool) -> TransferResult:
        if not payloads:
            return TransferResult(0.0, 0, 0)
        if (self._active_batch is not None
                and self._active_batch[0] == to_server):
            self._active_batch[1].extend(payloads)
            return TransferResult(0.0, 0, sum(len(p) for p in payloads))
        payload_bytes = sum(len(p) for p in payloads)
        direction = "to_server" if to_server else "to_mobile"
        groups: List[List[bytes]] = (
            [payloads] if self.enable_batching else [[p] for p in payloads])
        seconds = 0.0
        wire_total = 0
        saved_bytes = 0
        compression_seconds = 0.0
        for group in groups:
            raw = b"".join(group)
            if not to_server and self.enable_compression and len(raw) >= 128:
                compressed = zlib.compress(raw, 1)
                if len(compressed) < len(raw):
                    saved_bytes += len(raw) - len(compressed)
                    self.stats.compression_saved_bytes += (
                        len(raw) - len(compressed))
                    comp_secs = (len(raw) * COMPRESS_CYCLES_PER_BYTE
                                 / self.server_clock_hz
                                 + len(compressed)
                                 * DECOMPRESS_CYCLES_PER_BYTE
                                 / self.mobile_clock_hz)
                    self.stats.compression_seconds += comp_secs
                    compression_seconds += comp_secs
                    seconds += comp_secs
                    raw = compressed
            # The message body: compressed payload plus per-item framing.
            # The per-message header is charged by the network time model
            # itself (NetworkModel.header_bytes) and added back into the
            # wire-byte accounting below.
            body = len(raw) + PER_ITEM_HEADER_BYTES * len(group)
            try:
                seconds += self.transport.deliver(body, direction)
            except LinkDownError as err:
                self._charge_failure(seconds + err.elapsed_seconds,
                                     direction, payload_bytes)
                raise
            wire_total += body + MESSAGE_HEADER_BYTES
            self.stats.messages += 1
        if to_server:
            self.stats.bytes_to_server += payload_bytes
            self.stats.wire_bytes_to_server += wire_total
        else:
            self.stats.bytes_to_mobile += payload_bytes
            self.stats.wire_bytes_to_mobile += wire_total
        self.stats.comm_seconds += seconds
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("comm.send", direction, dur=seconds,
                        payload_bytes=payload_bytes, wire_bytes=wire_total,
                        items=len(payloads), messages=len(groups),
                        saved_bytes=saved_bytes,
                        compression_seconds=compression_seconds)
            metrics = tracer.metrics
            metrics.counter("comm.messages").inc(len(groups))
            metrics.counter(f"comm.payload_bytes_{direction}").inc(
                payload_bytes)
            metrics.counter(f"comm.wire_bytes_{direction}").inc(wire_total)
            metrics.counter("comm.compression_saved_bytes").inc(saved_bytes)
            metrics.counter("time.comm_seconds").inc(seconds)
            metrics.histogram("comm.send_payload_bytes").observe(
                payload_bytes)
        return TransferResult(seconds, wire_total, payload_bytes)

    def stream_to_mobile(self, payload: bytes) -> TransferResult:
        """Asynchronous one-way output forwarding (remote *output* I/O).

        With batching, outputs ride an established stream whose latency is
        pipelined away and only a small per-operation overhead remains;
        without batching every operation pays the full message latency —
        this is exactly the overhead the runtime's batching amortizes.
        """
        try:
            if self.enable_batching:
                seconds = self.transport.deliver(
                    len(payload), "to_mobile", pipelined=True,
                    overhead_s=STREAM_OP_OVERHEAD_S)
                wire = len(payload) + PER_ITEM_HEADER_BYTES
            else:
                seconds = self.transport.deliver(len(payload), "to_mobile")
                wire = len(payload) + MESSAGE_HEADER_BYTES
        except LinkDownError as err:
            self._charge_failure(err.elapsed_seconds, "to_mobile",
                                 len(payload))
            raise
        self.stats.messages += 1
        self.stats.bytes_to_mobile += len(payload)
        self.stats.wire_bytes_to_mobile += wire
        self.stats.comm_seconds += seconds
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("comm.stream", "to_mobile", dur=seconds,
                        payload_bytes=len(payload), wire_bytes=wire,
                        pipelined=self.enable_batching)
            metrics = tracer.metrics
            metrics.counter("comm.messages").inc()
            metrics.counter("comm.payload_bytes_to_mobile").inc(len(payload))
            metrics.counter("comm.wire_bytes_to_mobile").inc(wire)
            metrics.counter("time.comm_seconds").inc(seconds)
        return TransferResult(seconds, wire, len(payload))

    def round_trip(self, request_bytes: int,
                   response_bytes: int) -> TransferResult:
        """A small control round trip (offload request, remote input)."""
        seconds = 0.0
        try:
            seconds += self.transport.deliver(request_bytes, "to_server")
            seconds += self.transport.deliver(response_bytes, "to_mobile")
        except LinkDownError as err:
            self._charge_failure(seconds + err.elapsed_seconds, "control",
                                 request_bytes + response_bytes)
            raise
        self.stats.messages += 2
        self.stats.bytes_to_server += request_bytes
        self.stats.bytes_to_mobile += response_bytes
        self.stats.wire_bytes_to_server += (request_bytes
                                            + MESSAGE_HEADER_BYTES)
        self.stats.wire_bytes_to_mobile += (response_bytes
                                            + MESSAGE_HEADER_BYTES)
        self.stats.comm_seconds += seconds
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("comm.rtt", "control", dur=seconds,
                        request_bytes=request_bytes,
                        response_bytes=response_bytes,
                        wire_request_bytes=(request_bytes
                                            + MESSAGE_HEADER_BYTES),
                        wire_response_bytes=(response_bytes
                                             + MESSAGE_HEADER_BYTES))
            metrics = tracer.metrics
            metrics.counter("comm.messages").inc(2)
            metrics.counter("comm.payload_bytes_to_server").inc(
                request_bytes)
            metrics.counter("comm.payload_bytes_to_mobile").inc(
                response_bytes)
            metrics.counter("comm.wire_bytes_to_server").inc(
                request_bytes + MESSAGE_HEADER_BYTES)
            metrics.counter("comm.wire_bytes_to_mobile").inc(
                response_bytes + MESSAGE_HEADER_BYTES)
            metrics.counter("time.comm_seconds").inc(seconds)
        return TransferResult(seconds,
                              request_bytes + response_bytes
                              + 2 * MESSAGE_HEADER_BYTES,
                              request_bytes + response_bytes)

    def _charge_failure(self, seconds: float, direction: str,
                        payload_bytes: int) -> None:
        """Account a failed delivery: the simulated time burned on
        retries, timeouts and backoff is real wall-clock time for the
        mobile device even though no payload arrived."""
        self.stats.comm_seconds += seconds
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("comm.send", direction, dur=seconds,
                        payload_bytes=payload_bytes, wire_bytes=0,
                        items=0, messages=0, saved_bytes=0,
                        compression_seconds=0.0, failed=True)
            metrics = tracer.metrics
            metrics.counter("comm.failed_sends").inc()
            metrics.counter("time.comm_seconds").inc(seconds)

    def adjust_seconds(self, delta: float, reason: str = "adjust") -> None:
        """Apply a signed correction to the accumulated communication
        time (used when a recorded transfer's latency-bound timing is
        replaced by a pipelined figure, e.g. remote *input* I/O)."""
        self.stats.comm_seconds += delta
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("comm.adjust", reason, delta_seconds=delta)
            tracer.metrics.counter("time.comm_seconds").inc(delta)
