"""UVA manager: copy-on-demand page sharing and dirty write-back
(paper, Section 4, Figure 5), with an *incremental* data plane layered on
top (docs/uva-data-plane.md).

Both machines address shared data through the same unified virtual
addresses.  At offload initialization the server's view of shared memory
is synchronized with the mobile's (page-table synchronization); hot pages
are prefetched; any other shared page the server touches faults and is
pulled from the mobile device on demand.  At finalization the server's
dirty pages are written back to the mobile device in one compressed batch.

The incremental data plane makes repeated offloads cheap:

* **Cross-invocation page cache** — every shared page carries a version
  (bumped when the mobile writes it between offloads).  Initialization
  ships a version-vector *delta* instead of the whole page table,
  keeps server pages whose versions still match, and skips prefetching
  pages the server already holds clean.
* **Sub-page dirty deltas** — server writes are tracked at
  sub-page-block granularity; write-back and copy-on-demand refills are
  encoded as (offset, length, bytes) records against the cached base and
  fall back to whole pages past a break-even threshold.
* **Adaptive prefetch** — per-target fault history promotes
  frequently-faulted pages into the next invocation's prefetch set and
  demotes pages that were shipped but never touched.

Finalization is transactional with respect to link failure: the
write-back and allocator-state transfers are *staged* first
(``defer_commit=True``) and applied to mobile memory only by
:meth:`UVAManager.commit_finalize` once every byte is on the wire.  If
the transport dies mid-finalize (:class:`LinkDownError` out of the
communication manager), the session calls
:meth:`UVAManager.abort_invocation` instead and no staged state ever
touches the mobile device; server pages dirtied by the failed run are
dropped from the cache so a replayed invocation sees pre-offload state —
the abort-and-replay semantics invariant of DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (Callable, Dict, Iterable, List, Optional, Set, Tuple,
                    Union)

from ..machine.machine import (Machine, CODE_BASES, GLOBAL_BASES,
                               NATIVE_HEAP_BASES, NATIVE_HEAP_SIZE,
                               MOBILE_STACK_TOP, SERVER_STACK_TOP,
                               STACK_SIZE, UVA_HEAP_BASE, UVA_HEAP_SIZE)
from ..trace import NULL_TRACER, Tracer
from .comm import (CommunicationManager, DELTA_RECORD_HEADER_BYTES,
                   delta_records_size, encode_delta_records)

PAGE_TABLE_ENTRY_BYTES = 8
# A delta encoding at or above this fraction of the page size falls back
# to shipping the whole page (docs/uva-data-plane.md, break-even).
DELTA_BREAK_EVEN = 0.75
# Bound on the stale-base shadow cache (pages kept as delta bases after
# invalidation); beyond it, invalidated pages are simply dropped.
MAX_STALE_PAGES = 1024

# One delta transfer: (offset, bytes) patch records against a base the
# receiver already holds.
DeltaRecords = List[Tuple[int, bytes]]
# A staged write-back entry: a whole page or a delta against the
# mobile's current copy.
WritebackEntry = Union[bytes, DeltaRecords]

# Adaptive prefetch tuning: a page faulted this often (decayed score)
# is promoted; a page shipped but untouched this many consecutive
# invocations is demoted until it faults again.
PROMOTE_SCORE = 1.0
DEMOTE_AFTER_WASTED = 2
FAULT_SCORE_DECAY = 0.5


@dataclass
class UVAStats:
    cod_faults: int = 0
    cod_bytes: int = 0
    cod_seconds: float = 0.0
    prefetched_pages: int = 0
    prefetch_bytes: int = 0
    prefetch_seconds: float = 0.0
    written_back_pages: int = 0
    written_back_bytes: int = 0
    writeback_seconds: float = 0.0
    page_table_bytes: int = 0
    # Cross-invocation page cache (docs/uva-data-plane.md).
    cache_kept_pages: int = 0          # server pages surviving a sync
    cache_skipped_prefetch_pages: int = 0
    cache_saved_bytes: int = 0         # prefetch bytes avoided by the cache
    # Sub-page delta transfers.
    delta_pages: int = 0               # transfers encoded as deltas
    delta_records: int = 0
    delta_bytes: int = 0               # encoded delta bytes on the wire
    delta_saved_bytes: int = 0         # full-page bytes avoided
    # Adaptive prefetch.
    prefetch_hits: int = 0             # shipped pages the server touched
    prefetch_wasted: int = 0           # shipped pages never touched
    prefetch_promoted: int = 0
    prefetch_demoted: int = 0

    @property
    def prefetch_hit_ratio(self) -> float:
        total = self.prefetch_hits + self.prefetch_wasted
        return self.prefetch_hits / total if total else 0.0


class PrefetchAdvisor:
    """Per-target fault/usage history driving adaptive prefetch.

    Pages that fault keep a decayed score; a score at or above
    ``PROMOTE_SCORE`` joins the next invocation's prefetch set.  Pages
    shipped but untouched ``DEMOTE_AFTER_WASTED`` invocations in a row
    are demoted until a fault proves them useful again.
    """

    def __init__(self):
        self._fault_score: Dict[str, Dict[int, float]] = {}
        self._wasted_streak: Dict[str, Dict[int, int]] = {}
        self._demoted: Dict[str, Set[int]] = {}

    def adjust(self, target: str,
               pages: Set[int]) -> Tuple[Set[int], int, int]:
        """Apply history to a candidate prefetch set; returns the
        adjusted set plus (promoted, demoted) counts."""
        scores = self._fault_score.get(target, {})
        promoted = {p for p, score in scores.items()
                    if score >= PROMOTE_SCORE} - pages
        demoted = self._demoted.get(target, set()) & pages
        return (pages | promoted) - demoted, len(promoted), len(demoted)

    def observe(self, target: str, shipped: Set[int], touched: Set[int],
                faulted: Set[int]) -> Tuple[int, int]:
        """Record one completed invocation; returns (hits, wasted)."""
        scores = self._fault_score.setdefault(target, {})
        for page in list(scores):
            scores[page] *= FAULT_SCORE_DECAY
            if scores[page] < PROMOTE_SCORE / 4:
                del scores[page]
        for page in faulted:
            scores[page] = scores.get(page, 0.0) + 1.0
        streaks = self._wasted_streak.setdefault(target, {})
        demoted = self._demoted.setdefault(target, set())
        hits = wasted = 0
        for page in shipped:
            if page in touched:
                hits += 1
                streaks.pop(page, None)
            else:
                wasted += 1
                streaks[page] = streaks.get(page, 0) + 1
                if streaks[page] >= DEMOTE_AFTER_WASTED:
                    demoted.add(page)
        # a fault is proof the page is needed: demotion cannot stick
        for page in faulted:
            demoted.discard(page)
            streaks.pop(page, None)
        return hits, wasted


class UVAManager:
    """Coordinates the shared address space between one mobile machine and
    one server machine."""

    def __init__(self, mobile: Machine, server: Machine,
                 comm: CommunicationManager,
                 enable_prefetch: bool = True,
                 enable_copy_on_demand: bool = True,
                 enable_page_cache: bool = True,
                 enable_delta_transfer: bool = True,
                 enable_adaptive_prefetch: bool = True,
                 tracer: Optional[Tracer] = None):
        if mobile.memory.page_size != server.memory.page_size:
            raise ValueError("page size mismatch between machines")
        self.mobile = mobile
        self.server = server
        self.comm = comm
        self.enable_prefetch = enable_prefetch
        self.enable_copy_on_demand = enable_copy_on_demand
        self.enable_page_cache = enable_page_cache
        self.enable_delta_transfer = enable_delta_transfer
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.page_size = mobile.memory.page_size
        self.stats = UVAStats()
        self._server_private = self._private_ranges(server)
        # Staged finalization state (see commit_finalize / abort_invocation).
        self._pending_writeback: Optional[Dict[int, WritebackEntry]] = None
        self._pending_alloc_state: Optional[dict] = None
        # Scatter/gather shard captures (docs/parallel-offload.md): one
        # staged write-back dict per executed shard, in shard order.
        # Commit applies them in that order — later shards ran against
        # server memory that already held earlier shards' writes, so
        # in-order application reproduces the sequential k=1 content
        # byte for byte.  A discarded (straggler) capture becomes an
        # empty dict; its writes are re-created by the local replay.
        self._shard_writebacks: List[Dict[int, WritebackEntry]] = []
        # Cross-invocation page cache: per-page content versions on the
        # mobile side, the version of the clean base each server copy
        # corresponds to, and the versions last announced to the server
        # (the version vector is shipped as a delta against these).
        self._mobile_version: Dict[int, int] = {}
        self._server_version: Dict[int, int] = {}
        self._announced_version: Dict[int, int] = {}
        # Pages whose server copy matches the mobile's *current* content
        # for this invocation — the precondition for delta write-back.
        self._server_sourced: Set[int] = set()
        # Shadow copies of invalidated server pages kept as delta bases
        # for copy-on-demand refills and re-prefetches.
        self._stale_base: Dict[int, bytes] = {}
        # Adaptive prefetch bookkeeping for the current invocation.
        self.advisor = (PrefetchAdvisor() if enable_adaptive_prefetch
                        else None)
        self._current_target: Optional[str] = None
        self._invocation_faults: Set[int] = set()
        self._invocation_shipped: Set[int] = set()
        if enable_delta_transfer:
            server.memory.track_subpage = True
        server.memory.fault_handler = self._server_fault

    # -- region classification ----------------------------------------
    def _private_ranges(self, machine: Machine) -> List[Tuple[int, int]]:
        """Address ranges private to the server (never shared/CoD)."""
        return [
            (CODE_BASES["server"], GLOBAL_BASES["mobile"]
             - CODE_BASES["server"]),
            (GLOBAL_BASES["server"], 0x0008_0000),
            (machine.stack_top - STACK_SIZE, STACK_SIZE + self.page_size),
        ]

    def is_server_private(self, address: int) -> bool:
        return any(base <= address < base + size
                   for base, size in self._server_private)

    def shareable(self, page_index: int) -> bool:
        return not self.is_server_private(page_index * self.page_size)

    # -- invocation window (adaptive prefetch) -------------------------
    def begin_invocation(self, target: str) -> None:
        """Open one offload invocation's observation window."""
        self._current_target = target
        self._invocation_faults = set()
        self._invocation_shipped = set()
        if self.advisor is not None:
            self.server.memory.touched = set()

    def end_invocation(self) -> None:
        """Close the window after a *successful* invocation and feed the
        fault/usage observations to the adaptive-prefetch advisor."""
        self._close_invocation(aborted=False)

    def _close_invocation(self, aborted: bool) -> None:
        target = self._current_target
        shipped = self._invocation_shipped
        faulted = self._invocation_faults
        touched = self.server.memory.touched
        self._current_target = None
        self._invocation_faults = set()
        self._invocation_shipped = set()
        if self.advisor is None:
            return
        self.server.memory.touched = None
        if aborted or target is None:
            # observations of a failed run describe a partial execution;
            # they must not steer future prefetch sets
            return
        hits, wasted = self.advisor.observe(target, shipped,
                                            touched or set(), faulted)
        self.stats.prefetch_hits += hits
        self.stats.prefetch_wasted += wasted
        tracer = self.tracer
        if tracer.enabled and (hits or wasted or faulted):
            total = hits + wasted
            tracer.emit("uva.cache", "adaptive", target=target,
                        hits=hits, wasted=wasted,
                        hit_ratio=(hits / total if total else 0.0),
                        faults=len(faulted))
            tracer.metrics.counter("uva.prefetch_hits").inc(hits)
            tracer.metrics.counter("uva.prefetch_wasted").inc(wasted)

    # -- delta encoding helpers ----------------------------------------
    def _records_size(self, records: DeltaRecords) -> int:
        return delta_records_size(records)

    def _encode_wire(self, records: DeltaRecords) -> bytes:
        return encode_delta_records(records)

    def _mask_records(self, data: bytes, mask: int) -> DeltaRecords:
        """Runs of dirty sub-page blocks -> (offset, bytes) records."""
        block = self.server.memory.block_size
        records: DeltaRecords = []
        bit = 0
        while mask:
            if mask & 1:
                start = bit
                while mask & 1:
                    mask >>= 1
                    bit += 1
                offset = start * block
                length = min(bit * block, len(data)) - offset
                records.append((offset, data[offset:offset + length]))
            else:
                mask >>= 1
                bit += 1
        return records

    def _diff_records(self, data: bytes,
                      base: bytes) -> Optional[DeltaRecords]:
        """Block-granular diff of ``data`` against a stale base the
        server still holds; None when the delta misses break-even."""
        block = self.server.memory.block_size
        records: DeltaRecords = []
        start = None
        for offset in range(0, len(data), block):
            same = (data[offset:offset + block]
                    == base[offset:offset + block])
            if not same and start is None:
                start = offset
            elif same and start is not None:
                records.append((start, data[start:offset]))
                start = None
        if start is not None:
            records.append((start, data[start:]))
        if self._records_size(records) >= int(
                len(data) * DELTA_BREAK_EVEN):
            return None
        return records

    def _mark_server_clean(self, page_index: int) -> None:
        """The server just received (or kept) a copy identical to the
        mobile's current page content."""
        self.server.memory.dirty.discard(page_index)
        self._server_sourced.add(page_index)
        if self.enable_page_cache:
            self._server_version[page_index] = self._mobile_version.get(
                page_index, 0)

    # -- offload life-cycle steps ----------------------------------------
    def synchronize_page_table(self) -> float:
        """Initialization: ship page-table metadata and reconcile the
        server's view of shared memory.  The naive path invalidates the
        whole view and ships one entry per shared mobile page; with the
        page cache, only a version-vector *delta* is shipped, server
        pages whose versions still match survive, and invalidated pages
        are retained as delta bases.  Returns the metadata transfer
        time."""
        shared_mobile_pages = [p for p in self.mobile.memory.mapped_pages()
                               if self.shareable(p)]
        if not self.enable_page_cache:
            for pidx in list(self.server.memory.pages):
                if self.shareable(pidx):
                    self.server.memory.unmap_page(pidx)
            self._server_sourced.clear()
            table_bytes = PAGE_TABLE_ENTRY_BYTES * max(
                len(shared_mobile_pages), 1)
            self.stats.page_table_bytes += table_bytes
            return self.comm.send_to_server(
                [b"\x00" * table_bytes]).seconds
        # Advance versions for pages the mobile wrote since last sync.
        mobile_dirty = self.mobile.memory.dirty
        for pidx in [p for p in mobile_dirty if self.shareable(p)]:
            self._mobile_version[pidx] = (
                self._mobile_version.get(pidx, 0) + 1)
            mobile_dirty.discard(pidx)
        # Reconcile the server view against the version vector.
        self._server_sourced.clear()
        mobile_pages = self.mobile.memory.pages
        kept = invalidated = retained = 0
        for pidx in list(self.server.memory.pages):
            if not self.shareable(pidx):
                continue
            if (pidx in mobile_pages
                    and self._server_version.get(pidx)
                    == self._mobile_version.get(pidx, 0)):
                kept += 1
                self._server_sourced.add(pidx)
                continue
            invalidated += 1
            base = None
            if (self.enable_delta_transfer
                    and pidx in self._server_version
                    and pidx in mobile_pages
                    and len(self._stale_base) < MAX_STALE_PAGES):
                # keep the known-version copy as a delta base for the
                # refill (CoD fault or re-prefetch) of this page
                base = self.server.memory.page_bytes(pidx)
            self.server.memory.unmap_page(pidx)
            self._server_version.pop(pidx, None)
            if base is not None:
                self._stale_base[pidx] = base
                retained += 1
        # Version-vector delta: one entry per page whose version differs
        # from what the server last heard (plus one header entry).
        changed = [p for p in shared_mobile_pages
                   if self._announced_version.get(p)
                   != self._mobile_version.get(p, 0)]
        for pidx in changed:
            self._announced_version[pidx] = self._mobile_version.get(
                pidx, 0)
        table_bytes = PAGE_TABLE_ENTRY_BYTES * max(len(changed), 1)
        self.stats.page_table_bytes += table_bytes
        self.stats.cache_kept_pages += kept
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("uva.cache", "sync", kept=kept,
                        invalidated=invalidated, stale_retained=retained,
                        table_entries=len(changed),
                        table_bytes=table_bytes)
            tracer.metrics.counter("uva.cache_kept_pages").inc(kept)
            tracer.metrics.counter("uva.page_table_bytes").inc(
                table_bytes)
        return self.comm.send_to_server([b"\x00" * table_bytes]).seconds

    def live_mobile_pages(self, stack_pointer: int = 0) -> List[int]:
        """Pages "most likely used" by an offloaded task: the mobile's
        mapped UVA-heap pages plus the live top of the mobile stack.  This
        is the prefetch set of the initialization step (Figure 5)."""
        pages: List[int] = []
        for pidx in self.mobile.memory.mapped_pages():
            base = pidx * self.page_size
            if UVA_HEAP_BASE <= base < UVA_HEAP_BASE + UVA_HEAP_SIZE:
                pages.append(pidx)
            elif stack_pointer and (
                    stack_pointer - self.page_size <= base
                    < MOBILE_STACK_TOP):
                pages.append(pidx)
        return pages

    def prefetch(self, pages: Iterable[int]) -> float:
        """Initialization: push likely-used mobile pages to the server in
        one batched transfer.  The page cache skips pages the server
        already holds clean; stale pages ship as deltas against the
        retained base; adaptive prefetch reshapes the candidate set from
        per-target fault history."""
        if not self.enable_prefetch:
            return 0.0
        candidate = {p for p in pages}
        if self.advisor is not None and self._current_target is not None:
            candidate, promoted, demoted = self.advisor.adjust(
                self._current_target, candidate)
            self.stats.prefetch_promoted += promoted
            self.stats.prefetch_demoted += demoted
        payloads = []
        installed = {}
        skipped = 0
        delta_pages = delta_records = delta_bytes = delta_saved = 0
        for pidx in sorted(candidate):
            if not self.shareable(pidx):
                continue
            if pidx not in self.mobile.memory.pages:
                continue
            if (self.enable_page_cache
                    and pidx in self.server.memory.pages
                    and self._server_version.get(pidx)
                    == self._mobile_version.get(pidx, 0)):
                skipped += 1
                continue
            data = self.mobile.memory.page_bytes(pidx)
            payload = data
            if self.enable_page_cache and self.enable_delta_transfer:
                base = self._stale_base.pop(pidx, None)
                if base is not None:
                    records = self._diff_records(data, base)
                    if records is not None:
                        payload = self._encode_wire(records)
                        delta_pages += 1
                        delta_records += len(records)
                        delta_bytes += len(payload)
                        delta_saved += len(data) - len(payload)
            payloads.append(payload)
            installed[pidx] = data
        if skipped:
            self.stats.cache_skipped_prefetch_pages += skipped
            self.stats.cache_saved_bytes += skipped * self.page_size
            if self.tracer.enabled:
                self.tracer.metrics.counter(
                    "uva.cache_skipped_prefetch").inc(skipped)
        if not payloads:
            return 0.0
        self.server.memory.install_pages(installed)
        for pidx in installed:
            self._mark_server_clean(pidx)
        self._invocation_shipped |= set(installed)
        self.stats.prefetched_pages += len(installed)
        prefetch_bytes = sum(len(p) for p in payloads)
        self.stats.prefetch_bytes += prefetch_bytes
        if delta_pages:
            self.stats.delta_pages += delta_pages
            self.stats.delta_records += delta_records
            self.stats.delta_bytes += delta_bytes
            self.stats.delta_saved_bytes += delta_saved
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("uva.prefetch", "push", pages=len(installed),
                        bytes=prefetch_bytes, cache_skipped=skipped,
                        delta_pages=delta_pages)
            tracer.metrics.counter("uva.prefetch_pages").inc(len(installed))
            tracer.metrics.counter("uva.prefetch_bytes").inc(prefetch_bytes)
            if delta_pages:
                tracer.emit("uva.delta", "prefetch", pages=delta_pages,
                            records=delta_records,
                            encoded_bytes=delta_bytes,
                            saved_bytes=delta_saved)
                tracer.metrics.counter("uva.delta_saved_bytes").inc(
                    delta_saved)
        seconds = self.comm.send_to_server(payloads).seconds
        self.stats.prefetch_seconds += seconds
        return seconds

    def _server_fault(self, page_index: int) -> bool:
        """Copy-on-demand: a server access faulted; pull the page from the
        mobile device over the network (one round trip per fault).  When a
        stale base of the page survives in the shadow cache, only the
        changed sub-page blocks cross the wire."""
        if not self.enable_copy_on_demand:
            return False
        if not self.shareable(page_index):
            return False
        if page_index not in self.mobile.memory.pages:
            return False
        data = self.mobile.memory.page_bytes(page_index)
        response_bytes = len(data)
        delta_records_n = 0
        delta_saved = 0
        if self.enable_page_cache and self.enable_delta_transfer:
            base = self._stale_base.pop(page_index, None)
            if base is not None:
                records = self._diff_records(data, base)
                if records is not None:
                    response_bytes = self._records_size(records)
                    delta_records_n = len(records)
                    delta_saved = len(data) - response_bytes
        result = self.comm.round_trip(PAGE_TABLE_ENTRY_BYTES,
                                      response_bytes)
        self.server.memory.map_page(page_index, data)
        # the freshly copied page is not dirty on the server
        self._mark_server_clean(page_index)
        self._invocation_faults.add(page_index)
        self.stats.cod_faults += 1
        self.stats.cod_bytes += response_bytes
        self.stats.cod_seconds += result.seconds
        if delta_saved:
            self.stats.delta_pages += 1
            self.stats.delta_records += delta_records_n
            self.stats.delta_bytes += response_bytes
            self.stats.delta_saved_bytes += delta_saved
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("uva.fault", f"page-{page_index:#x}",
                        dur=result.seconds, page=page_index,
                        bytes=response_bytes)
            tracer.metrics.counter("uva.cod_faults").inc()
            tracer.metrics.counter("uva.cod_bytes").inc(response_bytes)
            tracer.metrics.histogram("uva.fault_seconds").observe(
                result.seconds)
            if delta_saved:
                tracer.emit("uva.delta", "cod-refill", pages=1,
                            records=delta_records_n,
                            encoded_bytes=response_bytes,
                            saved_bytes=delta_saved)
                tracer.metrics.counter("uva.delta_saved_bytes").inc(
                    delta_saved)
        return True

    def write_back(self, defer_commit: bool = False) -> Tuple[float, int]:
        """Finalization: send all server dirty pages (in the shared region)
        back to the mobile device, batched and compressed.  Pages whose
        base the mobile already holds ship as sub-page deltas when that
        beats the break-even threshold.  Returns (seconds, payload_bytes).

        With ``defer_commit`` the pages are transmitted (or queued on an
        open batching window) but **not** applied to mobile memory until
        :meth:`commit_finalize` — the session commits only after the
        whole finalization message survives the transport.
        """
        server_mem = self.server.memory
        masks = (dict(server_mem.dirty_blocks)
                 if self.enable_delta_transfer else {})
        dirty = server_mem.collect_dirty_pages()
        full_mask = server_mem.full_block_mask
        threshold = int(self.page_size * DELTA_BREAK_EVEN)
        payloads = []
        staged: Dict[int, WritebackEntry] = {}
        for pidx, data in dirty.items():
            if not self.shareable(pidx):
                continue
            entry: WritebackEntry = data
            payload = data
            if (self.enable_delta_transfer
                    and pidx in self._server_sourced
                    and pidx in self.mobile.memory.pages):
                mask = masks.get(pidx, full_mask)
                if mask != full_mask:
                    records = self._mask_records(data, mask)
                    if self._records_size(records) < threshold:
                        entry = records
                        payload = self._encode_wire(records)
            payloads.append(payload)
            staged[pidx] = entry
        bytes_back = sum(len(p) for p in payloads)
        seconds = (self.comm.send_to_mobile(payloads).seconds
                   if payloads else 0.0)
        self.stats.writeback_seconds += seconds
        if defer_commit:
            self._pending_writeback = staged
        else:
            self._apply_writeback(staged)
        if not payloads:
            return 0.0, 0
        return seconds, bytes_back

    def capture_shard_writeback(self) -> Tuple[int, List[bytes]]:
        """Stage one shard's dirty pages without touching the wire.

        The staging half of :meth:`write_back`: snapshot the server's
        dirty pages (delta-encoded where that beats break-even), append
        the staged entries to the plan's ordered capture sequence, and
        return ``(capture_index, wire_payloads)``.  The gather step
        transmits the payloads itself; :meth:`commit_finalize` applies
        every surviving capture in shard order."""
        server_mem = self.server.memory
        masks = (dict(server_mem.dirty_blocks)
                 if self.enable_delta_transfer else {})
        dirty = server_mem.collect_dirty_pages()
        full_mask = server_mem.full_block_mask
        threshold = int(self.page_size * DELTA_BREAK_EVEN)
        payloads: List[bytes] = []
        staged: Dict[int, WritebackEntry] = {}
        for pidx, data in dirty.items():
            if not self.shareable(pidx):
                continue
            entry: WritebackEntry = data
            payload = data
            if (self.enable_delta_transfer
                    and pidx in self._server_sourced
                    and pidx in self.mobile.memory.pages):
                mask = masks.get(pidx, full_mask)
                if mask != full_mask:
                    records = self._mask_records(data, mask)
                    if self._records_size(records) < threshold:
                        entry = records
                        payload = self._encode_wire(records)
            payloads.append(payload)
            staged[pidx] = entry
        index = len(self._shard_writebacks)
        self._shard_writebacks.append(staged)
        return index, payloads

    def discard_shard_writeback(self, index: int) -> None:
        """Drop a straggler shard's capture: nothing it staged may reach
        the mobile device.  The server's copy of those pages is left in
        place — the straggler's local replay rewrites the same elements
        on the mobile side, marking the pages dirty, so the next
        synchronization bumps their versions and invalidates the
        diverged server copies (no stale read is possible within this
        invocation: shards never read shard-written data)."""
        self._shard_writebacks[index] = {}

    def _apply_writeback(self, staged: Dict[int, WritebackEntry]) -> None:
        full: Dict[int, bytes] = {}
        bytes_back = 0
        delta_pages = delta_records = delta_bytes = delta_saved = 0
        for pidx, entry in staged.items():
            if isinstance(entry, (bytes, bytearray)):
                full[pidx] = bytes(entry)
                bytes_back += len(entry)
            else:
                self.mobile.memory.apply_delta(pidx, entry,
                                               mark_dirty=True)
                size = self._records_size(entry)
                bytes_back += size
                delta_pages += 1
                delta_records += len(entry)
                delta_bytes += size
                delta_saved += self.page_size - size
        self.mobile.memory.install_pages(full, mark_dirty=True)
        if self.enable_page_cache:
            # Both sides now hold identical content: bump the page
            # version once and record the server copy as that version,
            # so the next sync neither re-announces nor invalidates it.
            for pidx in staged:
                version = self._mobile_version.get(pidx, 0) + 1
                self._mobile_version[pidx] = version
                self._server_version[pidx] = version
                self._announced_version[pidx] = version
                self.mobile.memory.dirty.discard(pidx)
        self.stats.written_back_pages += len(staged)
        self.stats.written_back_bytes += bytes_back
        if delta_pages:
            self.stats.delta_pages += delta_pages
            self.stats.delta_records += delta_records
            self.stats.delta_bytes += delta_bytes
            self.stats.delta_saved_bytes += delta_saved
        tracer = self.tracer
        if tracer.enabled and staged:
            tracer.emit("uva.writeback", "dirty-pages",
                        pages=len(staged), bytes=bytes_back,
                        delta_pages=delta_pages)
            tracer.metrics.counter("uva.writeback_pages").inc(
                len(staged))
            tracer.metrics.counter("uva.writeback_bytes").inc(bytes_back)
            if delta_pages:
                tracer.emit("uva.delta", "writeback", pages=delta_pages,
                            records=delta_records,
                            encoded_bytes=delta_bytes,
                            saved_bytes=delta_saved)
                tracer.metrics.counter("uva.delta_saved_bytes").inc(
                    delta_saved)

    def commit_finalize(self) -> None:
        """Apply staged finalization state after the transfer succeeded."""
        if self._shard_writebacks:
            for staged in self._shard_writebacks:
                if staged:
                    self._apply_writeback(staged)
            self._shard_writebacks = []
        if self._pending_writeback is not None:
            self._apply_writeback(self._pending_writeback)
            self._pending_writeback = None
        if self._pending_alloc_state is not None:
            self.mobile.uva_heap.restore(self._pending_alloc_state)
            self._pending_alloc_state = None

    def abort_invocation(self) -> None:
        """Discard every piece of staged UVA state: nothing from the
        failed invocation may reach the mobile device, and server pages
        the failed run dirtied are dropped from the cache (their content
        diverged from every mobile version)."""
        staged = self._pending_writeback or {}
        dirtied = set(self.server.memory.dirty) | set(staged)
        for shard_staged in self._shard_writebacks:
            dirtied |= set(shard_staged)
        self._shard_writebacks = []
        self._pending_writeback = None
        self._pending_alloc_state = None
        if self.enable_page_cache or self.enable_delta_transfer:
            for pidx in dirtied:
                if not self.shareable(pidx):
                    continue
                self.server.memory.unmap_page(pidx)
                self._server_version.pop(pidx, None)
                self._server_sourced.discard(pidx)
                self._stale_base.pop(pidx, None)
        self.server.memory.clear_dirty()
        self._close_invocation(aborted=True)

    # -- allocator state synchronization ----------------------------------
    def push_allocator_state(self) -> float:
        """Ship the UVA allocator state mobile->server so server-side
        u_malloc continues from the same heap."""
        state = self.mobile.uva_heap.snapshot()
        self.server.uva_heap.restore(state)
        approx = 32 + 16 * len(state["free_list"])
        return self.comm.send_to_server([b"\x00" * approx]).seconds

    def pull_allocator_state(self, defer_commit: bool = False) -> float:
        state = self.server.uva_heap.snapshot()
        approx = 32 + 16 * len(state["free_list"])
        seconds = self.comm.send_to_mobile([b"\x00" * approx]).seconds
        if defer_commit:
            self._pending_alloc_state = state
        else:
            self.mobile.uva_heap.restore(state)
        return seconds
