"""UVA manager: copy-on-demand page sharing and dirty write-back
(paper, Section 4, Figure 5).

Both machines address shared data through the same unified virtual
addresses.  At offload initialization the server's view of shared memory is
invalidated (page-table synchronization); hot pages are prefetched; any
other shared page the server touches faults and is pulled from the mobile
device on demand.  At finalization the server's dirty pages are written
back to the mobile device in one compressed batch.

Finalization is transactional with respect to link failure: the
write-back and allocator-state transfers are *staged* first
(``defer_commit=True``) and applied to mobile memory only by
:meth:`UVAManager.commit_finalize` once every byte is on the wire.  If
the transport dies mid-finalize (:class:`LinkDownError` out of the
communication manager), the session calls
:meth:`UVAManager.abort_invocation` instead and no staged state ever
touches the mobile device — the abort-and-replay semantics invariant of
DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..machine.machine import (Machine, CODE_BASES, GLOBAL_BASES,
                               NATIVE_HEAP_BASES, NATIVE_HEAP_SIZE,
                               MOBILE_STACK_TOP, SERVER_STACK_TOP,
                               STACK_SIZE, UVA_HEAP_BASE, UVA_HEAP_SIZE)
from ..trace import NULL_TRACER, Tracer
from .comm import CommunicationManager

PAGE_TABLE_ENTRY_BYTES = 8


@dataclass
class UVAStats:
    cod_faults: int = 0
    cod_bytes: int = 0
    cod_seconds: float = 0.0
    prefetched_pages: int = 0
    prefetch_bytes: int = 0
    written_back_pages: int = 0
    written_back_bytes: int = 0


class UVAManager:
    """Coordinates the shared address space between one mobile machine and
    one server machine."""

    def __init__(self, mobile: Machine, server: Machine,
                 comm: CommunicationManager,
                 enable_prefetch: bool = True,
                 enable_copy_on_demand: bool = True,
                 tracer: Optional[Tracer] = None):
        if mobile.memory.page_size != server.memory.page_size:
            raise ValueError("page size mismatch between machines")
        self.mobile = mobile
        self.server = server
        self.comm = comm
        self.enable_prefetch = enable_prefetch
        self.enable_copy_on_demand = enable_copy_on_demand
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.page_size = mobile.memory.page_size
        self.stats = UVAStats()
        self._server_private = self._private_ranges(server)
        # Staged finalization state (see commit_finalize / abort_invocation).
        self._pending_writeback: Optional[Dict[int, bytes]] = None
        self._pending_alloc_state: Optional[dict] = None
        server.memory.fault_handler = self._server_fault

    # -- region classification ----------------------------------------
    def _private_ranges(self, machine: Machine) -> List[Tuple[int, int]]:
        """Address ranges private to the server (never shared/CoD)."""
        return [
            (CODE_BASES["server"], GLOBAL_BASES["mobile"]
             - CODE_BASES["server"]),
            (GLOBAL_BASES["server"], 0x0008_0000),
            (machine.stack_top - STACK_SIZE, STACK_SIZE + self.page_size),
        ]

    def is_server_private(self, address: int) -> bool:
        return any(base <= address < base + size
                   for base, size in self._server_private)

    def shareable(self, page_index: int) -> bool:
        return not self.is_server_private(page_index * self.page_size)

    # -- offload life-cycle steps ----------------------------------------
    def synchronize_page_table(self) -> float:
        """Initialization: ship the mobile page table and invalidate the
        server's stale view of shared memory.  Returns the transfer time
        of the page-table metadata."""
        shared_mobile_pages = [p for p in self.mobile.memory.mapped_pages()
                               if self.shareable(p)]
        for pidx in list(self.server.memory.pages):
            if self.shareable(pidx):
                self.server.memory.unmap_page(pidx)
        table_bytes = PAGE_TABLE_ENTRY_BYTES * max(
            len(shared_mobile_pages), 1)
        return self.comm.send_to_server(
            [b"\x00" * table_bytes]).seconds

    def live_mobile_pages(self, stack_pointer: int = 0) -> List[int]:
        """Pages "most likely used" by an offloaded task: the mobile's
        mapped UVA-heap pages plus the live top of the mobile stack.  This
        is the prefetch set of the initialization step (Figure 5)."""
        pages: List[int] = []
        for pidx in self.mobile.memory.mapped_pages():
            base = pidx * self.page_size
            if UVA_HEAP_BASE <= base < UVA_HEAP_BASE + UVA_HEAP_SIZE:
                pages.append(pidx)
            elif stack_pointer and (
                    stack_pointer - self.page_size <= base
                    < MOBILE_STACK_TOP):
                pages.append(pidx)
        return pages

    def prefetch(self, pages: Iterable[int]) -> float:
        """Initialization: push likely-used mobile pages to the server in
        one batched transfer."""
        if not self.enable_prefetch:
            return 0.0
        payloads = []
        installed = {}
        for pidx in sorted(set(pages)):
            if not self.shareable(pidx):
                continue
            if pidx not in self.mobile.memory.pages:
                continue
            data = self.mobile.memory.page_bytes(pidx)
            payloads.append(data)
            installed[pidx] = data
        if not payloads:
            return 0.0
        self.server.memory.install_pages(installed)
        self.stats.prefetched_pages += len(installed)
        prefetch_bytes = sum(len(p) for p in payloads)
        self.stats.prefetch_bytes += prefetch_bytes
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("uva.prefetch", "push", pages=len(installed),
                        bytes=prefetch_bytes)
            tracer.metrics.counter("uva.prefetch_pages").inc(len(installed))
            tracer.metrics.counter("uva.prefetch_bytes").inc(prefetch_bytes)
        return self.comm.send_to_server(payloads).seconds

    def _server_fault(self, page_index: int) -> bool:
        """Copy-on-demand: a server access faulted; pull the page from the
        mobile device over the network (one round trip per fault)."""
        if not self.enable_copy_on_demand:
            return False
        if not self.shareable(page_index):
            return False
        if page_index not in self.mobile.memory.pages:
            return False
        data = self.mobile.memory.page_bytes(page_index)
        result = self.comm.round_trip(PAGE_TABLE_ENTRY_BYTES, len(data))
        self.server.memory.map_page(page_index, data)
        # the freshly copied page is not dirty on the server
        self.server.memory.dirty.discard(page_index)
        self.stats.cod_faults += 1
        self.stats.cod_bytes += len(data)
        self.stats.cod_seconds += result.seconds
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit("uva.fault", f"page-{page_index:#x}",
                        dur=result.seconds, page=page_index,
                        bytes=len(data))
            tracer.metrics.counter("uva.cod_faults").inc()
            tracer.metrics.counter("uva.cod_bytes").inc(len(data))
            tracer.metrics.histogram("uva.fault_seconds").observe(
                result.seconds)
        return True

    def write_back(self, defer_commit: bool = False) -> Tuple[float, int]:
        """Finalization: send all server dirty pages (in the shared region)
        back to the mobile device, batched and compressed.  Returns
        (seconds, payload_bytes).

        With ``defer_commit`` the pages are transmitted (or queued on an
        open batching window) but **not** applied to mobile memory until
        :meth:`commit_finalize` — the session commits only after the
        whole finalization message survives the transport.
        """
        dirty = self.server.memory.collect_dirty_pages()
        payloads = []
        installed = {}
        for pidx, data in dirty.items():
            if not self.shareable(pidx):
                continue
            payloads.append(data)
            installed[pidx] = data
        bytes_back = sum(len(p) for p in payloads)
        seconds = (self.comm.send_to_mobile(payloads).seconds
                   if payloads else 0.0)
        if defer_commit:
            self._pending_writeback = installed
        else:
            self._apply_writeback(installed)
        if not payloads:
            return 0.0, 0
        return seconds, bytes_back

    def _apply_writeback(self, installed: Dict[int, bytes]) -> None:
        self.mobile.memory.install_pages(installed, mark_dirty=True)
        bytes_back = sum(len(p) for p in installed.values())
        self.stats.written_back_pages += len(installed)
        self.stats.written_back_bytes += bytes_back
        tracer = self.tracer
        if tracer.enabled and installed:
            tracer.emit("uva.writeback", "dirty-pages",
                        pages=len(installed), bytes=bytes_back)
            tracer.metrics.counter("uva.writeback_pages").inc(
                len(installed))
            tracer.metrics.counter("uva.writeback_bytes").inc(bytes_back)

    def commit_finalize(self) -> None:
        """Apply staged finalization state after the transfer succeeded."""
        if self._pending_writeback is not None:
            self._apply_writeback(self._pending_writeback)
            self._pending_writeback = None
        if self._pending_alloc_state is not None:
            self.mobile.uva_heap.restore(self._pending_alloc_state)
            self._pending_alloc_state = None

    def abort_invocation(self) -> None:
        """Discard every piece of staged UVA state: nothing from the
        failed invocation may reach the mobile device."""
        self._pending_writeback = None
        self._pending_alloc_state = None
        self.server.memory.clear_dirty()

    # -- allocator state synchronization ----------------------------------
    def push_allocator_state(self) -> float:
        """Ship the UVA allocator state mobile->server so server-side
        u_malloc continues from the same heap."""
        state = self.mobile.uva_heap.snapshot()
        self.server.uva_heap.restore(state)
        approx = 32 + 16 * len(state["free_list"])
        return self.comm.send_to_server([b"\x00" * approx]).seconds

    def pull_allocator_state(self, defer_commit: bool = False) -> float:
        state = self.server.uva_heap.snapshot()
        approx = 32 + 16 * len(state["free_list"])
        seconds = self.comm.send_to_mobile([b"\x00" * approx]).seconds
        if defer_commit:
            self._pending_alloc_state = state
        else:
            self.mobile.uva_heap.restore(state)
        return seconds
