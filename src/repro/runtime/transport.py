"""Reliable message transport over a faulty link.

The middle layer of the runtime communication stack
(docs/fault-model.md):

    Link (raw medium, fault injection)
      -> Transport (this module: per-message timeout, bounded retry with
         exponential backoff, reconnect)
        -> CommunicationManager (framing, batching, compression)

The transport turns the link's unreliable ``transmit`` into a
deliver-or-declare-dead primitive.  A transient drop costs one timeout
and one backoff wait, then the message is retried; a hard disconnect
triggers a bounded reconnect handshake.  When the retry or reconnect
budget is exhausted the transport raises :class:`LinkDownError` carrying
every simulated second burned on the failed delivery, so the session can
charge the wasted time to the timeline and the energy model before
falling back to local execution.

On a faultless link the transport is a strict pass-through: ``deliver``
returns exactly ``NetworkModel.one_way_time`` and consumes no
randomness, preserving the zero-fault no-op invariant (DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..trace import NULL_TRACER, Tracer
from .network import Link


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class LinkDownError(TransportError):
    """The transport declared the link dead for one delivery.

    ``elapsed_seconds`` is the simulated time already burned on the
    failed delivery (timeouts, backoff waits, reconnect probes); the
    communication manager charges it to the session timeline before the
    error propagates up to :class:`repro.runtime.session.OffloadSession`,
    which aborts the invocation and replays the target locally.
    """

    def __init__(self, message: str, elapsed_seconds: float = 0.0):
        super().__init__(message)
        self.elapsed_seconds = elapsed_seconds


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    ``max_attempts`` caps transmission attempts per message (first try
    included); a drop costs ``timeout_factor`` times the expected
    message time before it is detected, then the sender backs off
    ``backoff_base_s * backoff_multiplier**retry`` seconds.  After a
    hard disconnect the transport probes ``reconnect_attempts`` times at
    ``reconnect_timeout_s`` apiece.  Every figure is simulated time: the
    whole budget is charged to the mobile timeline and battery.
    """

    max_attempts: int = 5
    backoff_base_s: float = 0.005
    backoff_multiplier: float = 2.0
    timeout_factor: float = 2.0
    reconnect_attempts: int = 2
    reconnect_timeout_s: float = 0.02

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.reconnect_timeout_s < 0:
            raise ValueError("backoff and reconnect timeouts must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if self.timeout_factor <= 0:
            raise ValueError("timeout_factor must be positive")

    def backoff_s(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based)."""
        return self.backoff_base_s * self.backoff_multiplier ** retry_index

    def max_delivery_seconds(self, expected_s: float) -> float:
        """An upper bound on the time one delivery can burn before the
        transport gives up — the "bounded retry budget" the degradation
        benchmarks assert against."""
        budget = self.max_attempts * self.timeout_factor * expected_s
        for retry in range(self.max_attempts - 1):
            budget += self.backoff_s(retry)
        budget += self.reconnect_attempts * self.reconnect_timeout_s
        return budget


@dataclass
class TransportStats:
    """Counters surfaced through ``python -m repro trace`` and
    :class:`repro.runtime.session.SessionResult`."""

    messages: int = 0           # successfully delivered messages
    retries: int = 0            # re-transmissions after a drop
    drops: int = 0              # transient losses observed
    disconnects: int = 0        # hard link deaths observed
    reconnects: int = 0         # successful reconnect handshakes
    failed_deliveries: int = 0  # deliveries that raised LinkDownError
    timeout_seconds: float = 0.0
    backoff_seconds: float = 0.0
    reconnect_seconds: float = 0.0


class Transport:
    """Framed, retrying message delivery over one :class:`Link`."""

    def __init__(self, link: Link, policy: Optional[RetryPolicy] = None,
                 tracer: Optional[Tracer] = None):
        self.link = link
        self.policy = policy or RetryPolicy()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = TransportStats()

    # -- state the upper layers key decisions off ----------------------
    @property
    def alive(self) -> bool:
        return self.link.alive

    @property
    def usable(self) -> bool:
        """False once the link is dead with no prospect of coming back —
        the signal the dynamic estimator uses to stop offloading."""
        return self.link.alive or self.link.can_reconnect

    # -- delivery ------------------------------------------------------
    def deliver(self, payload_bytes: int, direction: str = "to_server",
                pipelined: bool = False,
                overhead_s: float = 0.0) -> float:
        """Deliver one framed message; returns the modeled seconds spent,
        retries, timeouts and backoff included.

        Raises :class:`LinkDownError` (carrying the seconds burned) when
        the retry budget is exhausted or the link dies and cannot be
        re-established.
        """
        link = self.link
        if link.faultless:
            # Strict pass-through: bit-identical to the pre-transport
            # closed-form path.
            self.stats.messages += 1
            return link.transmit(payload_bytes, pipelined=pipelined,
                                 overhead_s=overhead_s).seconds
        policy = self.policy
        elapsed = 0.0
        attempts = 0
        while True:
            if not link.alive:
                elapsed += self._reconnect_or_die(direction, elapsed)
            attempt = link.transmit(payload_bytes, pipelined=pipelined,
                                    overhead_s=overhead_s)
            attempts += 1
            if attempt.delivered:
                self.stats.messages += 1
                return elapsed + attempt.seconds
            timeout = (policy.timeout_factor
                       * link.expected_time(payload_bytes,
                                            pipelined=pipelined,
                                            overhead_s=overhead_s))
            elapsed += timeout
            self.stats.timeout_seconds += timeout
            if attempt.disconnected:
                self.stats.disconnects += 1
                if self.tracer.enabled:
                    self.tracer.emit("transport.disconnect", direction,
                                     attempts=attempts,
                                     elapsed_seconds=elapsed)
                    self.tracer.metrics.counter(
                        "transport.disconnects").inc()
                elapsed += self._reconnect_or_die(direction, elapsed)
            else:
                self.stats.drops += 1
                if self.tracer.enabled:
                    self.tracer.metrics.counter("transport.drops").inc()
            if attempts >= policy.max_attempts:
                self._give_up(direction, elapsed,
                              f"retry budget exhausted after "
                              f"{attempts} attempts")
            backoff = policy.backoff_s(attempts - 1)
            elapsed += backoff
            self.stats.backoff_seconds += backoff
            self.stats.retries += 1
            if self.tracer.enabled:
                self.tracer.emit("transport.retry", direction,
                                 attempt=attempts,
                                 backoff_seconds=backoff,
                                 timeout_seconds=timeout)
                metrics = self.tracer.metrics
                metrics.counter("transport.retries").inc()
                metrics.counter("transport.backoff_seconds").inc(backoff)

    def _reconnect_or_die(self, direction: str,
                          elapsed_before: float) -> float:
        """Probe for a reconnect; returns the seconds the handshake cost
        or raises :class:`LinkDownError` with the full elapsed time."""
        policy = self.policy
        spent = 0.0
        for _ in range(policy.reconnect_attempts):
            spent += policy.reconnect_timeout_s
            self.stats.reconnect_seconds += policy.reconnect_timeout_s
            if self.link.try_reconnect():
                self.stats.reconnects += 1
                if self.tracer.enabled:
                    self.tracer.emit("transport.reconnect", direction,
                                     seconds=spent)
                    self.tracer.metrics.counter(
                        "transport.reconnects").inc()
                return spent
        # failed probes are real recovery time on the device timeline
        # (they ride the failed delivery's comm.send dur); without this
        # event the critical-path analysis could not attribute them
        if spent and self.tracer.enabled:
            self.tracer.emit("transport.reconnect", direction,
                             seconds=spent, failed=True)
        self._give_up(direction, elapsed_before + spent,
                      "link dead and reconnect failed")

    def _give_up(self, direction: str, elapsed: float, why: str) -> None:
        self.stats.failed_deliveries += 1
        if self.tracer.enabled:
            self.tracer.metrics.counter("transport.failed_deliveries").inc()
        raise LinkDownError(f"{why} ({direction})", elapsed)
