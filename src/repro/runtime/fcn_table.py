"""Function address table (paper, Section 3.4).

Back ends place the same function at different addresses on the mobile
device and the server.  Shared memory canonically holds *mobile* function
addresses; the server maps mobile->server before an indirect call (m2s) and
server->mobile when storing a function address (s2m).  Each lookup costs
real time — Figure 7 shows this as a first-order overhead for 445.gobmk,
458.sjeng and 464.h264ref.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..machine.machine import Machine

# Cost of one table lookup on the server, in raw machine cycles (hash,
# validation, and the indirect-branch misprediction it induces).
MAP_LOOKUP_CYCLES = 300.0


class UnmappableFunctionPointer(Exception):
    def __init__(self, address: int, direction: str):
        super().__init__(
            f"no {direction} mapping for function address {address:#x}")
        self.address = address


class FunctionAddressTable:
    """Bidirectional mobile<->server function address map."""

    def __init__(self, mobile: Machine, server: Machine):
        self.m2s: Dict[int, int] = {}
        self.s2m: Dict[int, int] = {}
        for name, mobile_addr in mobile.function_addresses.items():
            server_addr = server.function_addresses.get(name)
            if server_addr is None:
                continue
            self.m2s[mobile_addr] = server_addr
            self.s2m[server_addr] = mobile_addr
        self.m2s_lookups = 0
        self.s2m_lookups = 0

    def map_m2s(self, address: int) -> int:
        self.m2s_lookups += 1
        try:
            return self.m2s[address]
        except KeyError:
            # Address may already be a server address (e.g. stored by the
            # server itself without s2m canonicalization disabled).
            if address in self.s2m:
                return address
            raise UnmappableFunctionPointer(address, "m2s") from None

    def map_s2m(self, address: int) -> int:
        self.s2m_lookups += 1
        try:
            return self.s2m[address]
        except KeyError:
            if address in self.m2s:
                return address
            raise UnmappableFunctionPointer(address, "s2m") from None

    @property
    def total_lookups(self) -> int:
        return self.m2s_lookups + self.s2m_lookups
