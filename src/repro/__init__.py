"""Native Offloader: architecture-aware automatic computation offload for
native applications.

Reproduction of Lee et al., MICRO 2015.  The package is organized as the
paper's system is:

* :mod:`repro.frontend` / :mod:`repro.ir` — C frontend and the IR the
  compiler partitions.
* :mod:`repro.profiler` — the hot function/loop profiler.
* :mod:`repro.offload` — the Native Offloader compiler (target selection,
  memory unification, partitioning, server-specific optimization).
* :mod:`repro.runtime` — the Native Offloader runtime (UVA copy-on-demand,
  communication, dynamic estimation, the offload session).
* :mod:`repro.machine` / :mod:`repro.targets` — simulated ARM/x86 machines.
* :mod:`repro.workloads` — the 17 SPEC-like programs of Table 4 plus the
  chess running example.
* :mod:`repro.eval` — regenerates every table and figure of the paper.

Quick start::

    from repro import offload_app, FAST_WIFI

    result = offload_app(C_SOURCE, stdin=b"...", network=FAST_WIFI)
    print(result.stdout, result.total_seconds)
"""

from __future__ import annotations

from typing import Dict, Optional

from .frontend import compile_c
from .profiler import profile_module
from .offload import CompilerOptions, NativeOffloaderCompiler, OffloadProgram
from .runtime import (FAST_WIFI, IDEAL_NETWORK, NetworkModel, OffloadSession,
                      SLOW_WIFI, SessionOptions, SessionResult, run_local)
from .targets import ARM32, ARM64, MIPS32BE, X86, X86_64
from .trace import MetricsRegistry, TraceEvent, Tracer

__version__ = "1.0.0"

__all__ = [
    "compile_c", "profile_module",
    "CompilerOptions", "NativeOffloaderCompiler", "OffloadProgram",
    "FAST_WIFI", "IDEAL_NETWORK", "NetworkModel", "OffloadSession",
    "SLOW_WIFI", "SessionOptions", "SessionResult", "run_local",
    "ARM32", "ARM64", "MIPS32BE", "X86", "X86_64",
    "MetricsRegistry", "TraceEvent", "Tracer",
    "offload_app", "__version__",
]


def offload_app(source: str,
                name: str = "app",
                stdin: bytes = b"",
                files: Optional[Dict[str, bytes]] = None,
                profile_stdin: Optional[bytes] = None,
                profile_files: Optional[Dict[str, bytes]] = None,
                network: NetworkModel = FAST_WIFI,
                compiler_options: Optional[CompilerOptions] = None,
                session_options: Optional[SessionOptions] = None
                ) -> SessionResult:
    """One-call convenience API: compile a C source, profile it, build the
    offloading-enabled partitions, and execute them over ``network``.

    ``profile_stdin``/``profile_files`` default to the evaluation inputs;
    the paper uses distinct (smaller) profiling inputs, so pass them when
    fidelity matters.
    """
    module = compile_c(source, name)
    profile = profile_module(
        module,
        stdin=profile_stdin if profile_stdin is not None else stdin,
        files=profile_files if profile_files is not None else files)
    compiler = NativeOffloaderCompiler(compiler_options
                                       or CompilerOptions())
    program = compiler.compile(module, profile)
    session = OffloadSession(program, network, options=session_options,
                             stdin=stdin, files=files)
    return session.run()
