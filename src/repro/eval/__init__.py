"""Evaluation harness: regenerates every table and figure of the paper."""

from .runner import (CONFIG_NETWORKS, ProgramResult, clear_cache, evaluate,
                     evaluate_suite, geomean, run_program)
from .format import bar, format_table, sparkline
from .tables import (Table1Row, Table3Row, Table4Row, SystemComparison,
                     TABLE1_DIFFICULTIES, TABLE5_SYSTEMS, render_table1,
                     render_table2, render_table3, render_table4,
                     render_table5, table1_chess_gap, table2_native_ratios,
                     table3_estimation, table4_offload_details,
                     table5_system_comparison)
from .figures import (BREAKDOWN_KEYS, Figure6Row, Figure7Row, PowerSeries,
                      figure6a_execution_time, figure6b_battery,
                      figure7_breakdown, figure8_power_traces, geomean_row,
                      render_figure6, render_figure7, render_figure8)

__all__ = [
    "CONFIG_NETWORKS", "ProgramResult", "clear_cache", "evaluate",
    "evaluate_suite", "geomean", "run_program",
    "bar", "format_table", "sparkline",
    "Table1Row", "Table3Row", "Table4Row", "SystemComparison",
    "TABLE1_DIFFICULTIES", "TABLE5_SYSTEMS", "render_table1",
    "render_table2", "render_table3", "render_table4", "render_table5",
    "table1_chess_gap", "table2_native_ratios", "table3_estimation",
    "table4_offload_details", "table5_system_comparison",
    "BREAKDOWN_KEYS", "Figure6Row", "Figure7Row", "PowerSeries",
    "figure6a_execution_time", "figure6b_battery", "figure7_breakdown",
    "figure8_power_traces", "geomean_row", "render_figure6",
    "render_figure7", "render_figure8",
]
