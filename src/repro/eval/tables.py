"""Regeneration of the paper's tables.

Each ``tableN_*`` function returns structured data; the ``render_*``
companions format it as text.  Benchmarks in ``benchmarks/`` call these to
regenerate every table of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..offload.estimator import (EstimatorParams,
                                 StaticPerformanceEstimator, mbps)
from ..offload.filter import FunctionFilter
from ..profiler.profiler import profile_module
from ..targets.presets import ARM32, X86_64
from ..workloads.android_apps import TOP20_APPS, survey_summary
from ..workloads.chess import CHESS, chess_stdin
from ..workloads.registry import SPEC_WORKLOADS
from .format import format_table
from .runner import ProgramResult, evaluate_suite, geomean

# ---------------------------------------------------------------------------
# Table 1 — chess movement computation time, smartphone vs desktop
# ---------------------------------------------------------------------------

# The paper's difficulty levels 7..11 map to search depths 1..5 of the
# scaled-down chess engine.
TABLE1_DIFFICULTIES = {7: 1, 8: 2, 9: 3, 10: 4, 11: 5}


@dataclass
class Table1Row:
    difficulty: int
    desktop_seconds: float
    smartphone_seconds: float

    @property
    def gap(self) -> float:
        if self.desktop_seconds <= 0:
            return 0.0
        return self.smartphone_seconds / self.desktop_seconds


def table1_chess_gap(difficulties: Optional[Dict[int, int]] = None
                     ) -> List[Table1Row]:
    """Movement computation time of the chess AI on both machines."""
    difficulties = difficulties or TABLE1_DIFFICULTIES
    rows = []
    for difficulty, depth in sorted(difficulties.items()):
        stdin = chess_stdin(depth=depth, turns=1)
        times = {}
        for arch in (X86_64, ARM32):
            module = CHESS.module()
            profile = profile_module(module, arch=arch, stdin=stdin)
            times[arch.name] = profile.candidates["getAITurn"].total_seconds
        rows.append(Table1Row(difficulty, times["x86_64"], times["arm32"]))
    return rows


def render_table1(rows: Optional[List[Table1Row]] = None) -> str:
    rows = rows or table1_chess_gap()
    return format_table(
        ["Difficulty", "Desktop (s)", "Smartphone (s)", "Gap (x)"],
        [(r.difficulty, r.desktop_seconds, r.smartphone_seconds, r.gap)
         for r in rows],
        title="Table 1: chess movement computation time")


# ---------------------------------------------------------------------------
# Table 2 — native code in the top-20 Android applications
# ---------------------------------------------------------------------------

def table2_native_ratios():
    return TOP20_APPS


def render_table2() -> str:
    rows = [(a.name, a.c_cpp_loc, a.total_loc,
             f"{a.native_loc_ratio_pct:.2f}%",
             f"{a.native_exec_ratio_pct:.2f}%")
            for a in TOP20_APPS]
    summary = survey_summary()
    table = format_table(
        ["Application", "C/C++ LoC", "Total LoC", "LoC ratio",
         "Exec ratio"],
        rows, title="Table 2: native code in top-20 Android apps")
    return (f"{table}\n"
            f"apps >50% native LoC: {summary['majority_native_loc']}, "
            f">20% native exec time: {summary['heavy_native_runtime']} "
            f"(both: {summary['both']} of {summary['total_apps']})")


# ---------------------------------------------------------------------------
# Table 3 — profiling + Equation 1 for the chess example
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    candidate: str
    exec_seconds: float
    invocations: int
    memory_mb: float
    t_ideal: float
    t_comm: float
    t_gain: float
    filtered: str   # "" or the filter reason


def table3_estimation(performance_ratio: float = 5.0,
                      bandwidth_mbps: float = 80.0) -> List[Table3Row]:
    """Profile the chess game and apply Equation 1 with the paper's
    assumptions (R=5, BW=80 Mbps)."""
    module = CHESS.module()
    profile = profile_module(module, stdin=CHESS.profile_stdin)
    estimator = StaticPerformanceEstimator(EstimatorParams(
        performance_ratio, mbps(bandwidth_mbps)))
    filter_ = FunctionFilter(module)
    rows: List[Table3Row] = []
    interesting = ["runGame", "getAITurn", "getAITurn_for.cond1",
                   "searchMove", "getPlayerTurn", "updateBoard"]
    for name in interesting:
        prof = profile.candidates.get(name)
        if prof is None or prof.invocations == 0:
            continue
        estimate = estimator.estimate(prof)
        if prof.kind == "function" and name in module.functions:
            verdict = filter_.verdict(name)
            filtered = verdict.reasons[0] if verdict.machine_specific else ""
        else:
            filtered = ""
        rows.append(Table3Row(
            candidate=name,
            exec_seconds=prof.total_seconds,
            invocations=prof.invocations,
            memory_mb=prof.memory_bytes / 1e6,
            t_ideal=estimate.t_ideal,
            t_comm=estimate.t_comm,
            t_gain=estimate.t_gain,
            filtered=filtered))
    return rows


def render_table3(rows: Optional[List[Table3Row]] = None) -> str:
    rows = rows or table3_estimation()
    return format_table(
        ["Candidate", "Exec (s)", "Invo", "Mem (MB)", "T_ideal", "T_c",
         "T_gain", "Machine specific"],
        [(r.candidate, r.exec_seconds, r.invocations, r.memory_mb,
          r.t_ideal, r.t_comm, r.t_gain, r.filtered or "-")
         for r in rows],
        title="Table 3: profiling and Equation 1 (R=5, BW=80 Mbps)")


# ---------------------------------------------------------------------------
# Table 4 — offloaded-program details
# ---------------------------------------------------------------------------

@dataclass
class Table4Row:
    program: str
    loc: int
    exec_seconds: float
    offloaded_functions: str
    referenced_globals: str
    fn_ptr_sites: int
    targets: str
    coverage_pct: float
    invocations: int
    traffic_mb_per_invocation: float
    paper_target: str
    paper_invocations: int


def table4_offload_details(results: Optional[Dict[str, ProgramResult]] = None
                           ) -> List[Table4Row]:
    results = results or evaluate_suite()
    rows: List[Table4Row] = []
    for spec in SPEC_WORKLOADS:
        result = results.get(spec.name)
        if result is None:
            continue
        stats = result.program.statistics()
        fast = result.sessions["fast"]
        rows.append(Table4Row(
            program=spec.name,
            loc=spec.loc,
            exec_seconds=result.local.seconds,
            offloaded_functions=(f"{stats['offloaded_functions']} / "
                                 f"{stats['total_functions']}"),
            referenced_globals=(f"{stats['referenced_globals']} / "
                                f"{stats['total_globals']}"),
            fn_ptr_sites=stats["fn_ptr_sites"],
            targets=", ".join(stats["targets"]),
            coverage_pct=result.coverage_pct(),
            invocations=fast.offloaded_invocations,
            traffic_mb_per_invocation=fast.traffic_per_invocation_mb,
            paper_target=spec.paper.target,
            paper_invocations=spec.paper.invocations))
    return rows


def render_table4(rows: Optional[List[Table4Row]] = None) -> str:
    rows = rows or table4_offload_details()
    return format_table(
        ["Program", "LoC", "Exec (s)", "Off. Fcn", "Ref. GV", "FcnPtr",
         "Target", "Cover %", "Inv", "Traf MB/inv"],
        [(r.program, r.loc, r.exec_seconds, r.offloaded_functions,
          r.referenced_globals, r.fn_ptr_sites, r.targets, r.coverage_pct,
          r.invocations, r.traffic_mb_per_invocation)
         for r in rows],
        title="Table 4: details of offloaded programs")


# ---------------------------------------------------------------------------
# Table 5 — comparison of computation offload systems
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class SystemComparison:
    system: str
    fully_automatic: str
    decision: str
    requires_vm: bool
    language: str
    target_complexity: str


TABLE5_SYSTEMS: List[SystemComparison] = [
    SystemComparison("Cuckoo", "No (Manual)", "Static", True, "Java",
                     "Complex"),
    SystemComparison("Li et al.", "No (Manual)", "Static", False, "C",
                     "Simple"),
    SystemComparison("Roam", "No (Manual)", "Dynamic", True, "Java",
                     "Complex"),
    SystemComparison("MAUI", "No (Annotation)", "Dynamic", True, "C#",
                     "Complex"),
    SystemComparison("ThinkAir", "No (Annotation)", "Dynamic", True,
                     "Java", "Complex"),
    SystemComparison("Wang and Li", "No (Annotation)", "Dynamic", False,
                     "C", "Simple"),
    SystemComparison("DiET", "Yes", "Static", True, "Java", "Simple"),
    SystemComparison("Chen et al.", "Yes", "Dynamic", True, "Java",
                     "Simple"),
    SystemComparison("HELVM", "Yes", "Dynamic", True, "Java", "Simple"),
    SystemComparison("OLIE", "Yes", "Dynamic", True, "Java", "Complex"),
    SystemComparison("CloneCloud", "Yes", "Dynamic", True, "Java",
                     "Complex"),
    SystemComparison("COMET", "Yes", "Dynamic", True, "Java", "Complex"),
    SystemComparison("CMcloud", "Yes", "Dynamic", True, "Java", "Complex"),
    SystemComparison("Native Offloader", "Yes", "Dynamic", False, "C",
                     "Complex"),
]


def table5_system_comparison() -> List[SystemComparison]:
    return list(TABLE5_SYSTEMS)


def render_table5() -> str:
    return format_table(
        ["System", "Fully-Automatic", "Decision", "Requires VM",
         "Language", "Complexity"],
        [(s.system, s.fully_automatic, s.decision,
          "Yes" if s.requires_vm else "No", s.language,
          s.target_complexity)
         for s in TABLE5_SYSTEMS],
        title="Table 5: comparison of computation offload systems")
