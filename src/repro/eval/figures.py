"""Regeneration of the paper's figures (as data series + text rendering).

Figure 6(a): normalized execution time; Figure 6(b): normalized battery;
Figure 7: overhead breakdown; Figure 8: power over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..runtime.session import SessionResult
from ..workloads.registry import SPEC_WORKLOADS
from .format import bar, format_table, sparkline
from .runner import ProgramResult, evaluate_suite, geomean

CONFIG_LABELS = ("slow", "fast", "ideal")


@dataclass
class Figure6Row:
    program: str
    normalized: Dict[str, float]         # label -> normalized value
    offloaded: Dict[str, bool]           # did the runtime offload at all?


def _figure6(results: Dict[str, ProgramResult],
             metric: str) -> List[Figure6Row]:
    rows: List[Figure6Row] = []
    for spec in SPEC_WORKLOADS:
        result = results.get(spec.name)
        if result is None:
            continue
        normalized = {}
        offloaded = {}
        for label in CONFIG_LABELS:
            if metric == "time":
                normalized[label] = result.normalized_time(label)
            else:
                normalized[label] = result.normalized_energy(label)
            offloaded[label] = (
                result.sessions[label].offloaded_invocations > 0)
        rows.append(Figure6Row(spec.name, normalized, offloaded))
    return rows


def figure6a_execution_time(results: Optional[Dict[str, ProgramResult]]
                            = None) -> List[Figure6Row]:
    """Normalized whole-program execution time (Figure 6(a))."""
    return _figure6(results or evaluate_suite(), "time")


def figure6b_battery(results: Optional[Dict[str, ProgramResult]] = None
                     ) -> List[Figure6Row]:
    """Normalized battery consumption (Figure 6(b))."""
    return _figure6(results or evaluate_suite(), "energy")


def geomean_row(rows: List[Figure6Row]) -> Dict[str, float]:
    return {label: geomean([r.normalized[label] for r in rows])
            for label in CONFIG_LABELS}


def render_figure6(rows: List[Figure6Row], title: str) -> str:
    table_rows = []
    for r in rows:
        cells = [r.program]
        for label in CONFIG_LABELS:
            star = "" if r.offloaded[label] else "*"
            cells.append(f"{r.normalized[label]:.3f}{star}")
        table_rows.append(cells)
    gm = geomean_row(rows)
    table_rows.append(["geomean"] + [f"{gm[l]:.3f}" for l in CONFIG_LABELS])
    text = format_table(["Program", "slow", "fast", "ideal"], table_rows,
                        title=title)
    return text + "\n(* = not offloaded by the dynamic estimator)"


# ---------------------------------------------------------------------------
# Figure 7 — overhead breakdown
# ---------------------------------------------------------------------------

BREAKDOWN_KEYS = ("computation", "fn_ptr_translation", "remote_io",
                  "communication")


@dataclass
class Figure7Row:
    program: str
    network: str                       # "slow" or "fast"
    seconds: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def fraction(self, key: str) -> float:
        total = self.total
        return self.seconds[key] / total if total > 0 else 0.0


def figure7_breakdown(results: Optional[Dict[str, ProgramResult]] = None
                      ) -> List[Figure7Row]:
    results = results or evaluate_suite()
    rows: List[Figure7Row] = []
    for spec in SPEC_WORKLOADS:
        result = results.get(spec.name)
        if result is None:
            continue
        for label in ("slow", "fast"):
            session = result.sessions[label]
            rows.append(Figure7Row(spec.name, label,
                                   dict(session.breakdown())))
    return rows


def render_figure7(rows: Optional[List[Figure7Row]] = None) -> str:
    rows = rows or figure7_breakdown()
    table_rows = []
    for r in rows:
        table_rows.append(
            (f"{r.program} ({r.network[0]})",
             *(f"{r.fraction(k) * 100:.1f}%" for k in BREAKDOWN_KEYS)))
    return format_table(
        ["Program", "compute", "fn-ptr", "remote I/O", "comm"],
        table_rows, title="Figure 7: breakdown of overheads")


# ---------------------------------------------------------------------------
# Figure 8 — power consumption over time
# ---------------------------------------------------------------------------

@dataclass
class PowerSeries:
    program: str
    network: str
    samples: List[Tuple[float, float]]   # (seconds, mW)

    @property
    def peak_mw(self) -> float:
        return max((p for _, p in self.samples), default=0.0)

    @property
    def mean_mw(self) -> float:
        if not self.samples:
            return 0.0
        return sum(p for _, p in self.samples) / len(self.samples)


def figure8_power_traces(results: Optional[Dict[str, ProgramResult]] = None,
                         resolution: float = 2e-3) -> List[PowerSeries]:
    """Power over time for 458.sjeng (fast) and 445.gobmk (fast and
    slow), mirroring Figure 8's three panels."""
    results = results or evaluate_suite(["458.sjeng", "445.gobmk"])
    panels = [("458.sjeng", "fast"), ("445.gobmk", "fast"),
              ("445.gobmk", "slow")]
    series: List[PowerSeries] = []
    for program, label in panels:
        result = results[program]
        trace = result.sessions[label].power_trace
        series.append(PowerSeries(
            program, label, trace.sample(resolution)))
    return series


def render_figure8(series: Optional[List[PowerSeries]] = None) -> str:
    series = series or figure8_power_traces()
    lines = ["Figure 8: power consumption over time"]
    for s in series:
        lines.append(f"{s.program} ({s.network}): peak {s.peak_mw:.0f} mW, "
                     f"mean {s.mean_mw:.0f} mW, "
                     f"{s.samples[-1][0] * 1e3:.1f} ms")
        lines.append("  " + sparkline([p for _, p in s.samples]))
    return "\n".join(lines)
