"""Experiment runner: executes one workload under every configuration of
Figure 6 (local, ideal, fast, slow) and caches results so all tables and
figures share a single evaluation pass.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..offload.pipeline import (CompilerOptions, NativeOffloaderCompiler,
                                OffloadProgram)
from ..profiler.profile_data import ProfileData
from ..profiler.profiler import profile_module
from ..runtime.local import LocalRunResult, run_local
from ..runtime.network import (FAST_WIFI, IDEAL_NETWORK, NetworkModel,
                               SLOW_WIFI)
from ..runtime.session import OffloadSession, SessionOptions, SessionResult
from ..workloads.base import WorkloadSpec
from ..workloads.registry import SPEC_WORKLOADS, workload

# Standard configuration labels of Figure 6.
CONFIG_NETWORKS: Dict[str, Tuple[NetworkModel, bool]] = {
    "ideal": (IDEAL_NETWORK, True),   # (network, zero_overhead)
    "fast": (FAST_WIFI, False),
    "slow": (SLOW_WIFI, False),
}


@dataclass
class ProgramResult:
    """Everything measured for one workload."""

    spec: WorkloadSpec
    profile: ProfileData
    program: OffloadProgram
    local: LocalRunResult
    sessions: Dict[str, SessionResult] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.spec.name

    def speedup(self, label: str) -> float:
        session = self.sessions[label]
        if session.total_seconds <= 0:
            return 0.0
        return self.local.seconds / session.total_seconds

    def normalized_time(self, label: str) -> float:
        """Execution time normalized to local execution (Figure 6(a))."""
        return self.sessions[label].total_seconds / self.local.seconds

    def normalized_energy(self, label: str) -> float:
        """Battery consumption normalized to local (Figure 6(b))."""
        return self.sessions[label].energy_mj / self.local.energy_mj

    def battery_saving_pct(self, label: str) -> float:
        return (1.0 - self.normalized_energy(label)) * 100.0

    def outputs_match(self) -> bool:
        return all(s.stdout == self.local.stdout
                   for s in self.sessions.values())

    def coverage_pct(self) -> float:
        """Share of profiled execution time covered by the selected
        offload targets (Table 4's Cover. column)."""
        total = self.profile.program_seconds
        if total <= 0:
            return 0.0
        covered = sum(
            self.profile.candidates[t.name].total_seconds
            for t in self.program.targets
            if t.name in self.profile.candidates)
        return min(100.0, 100.0 * covered / total)


def run_program(spec: WorkloadSpec,
                labels: Iterable[str] = ("ideal", "fast", "slow"),
                compiler_options: Optional[CompilerOptions] = None,
                session_options: Optional[SessionOptions] = None
                ) -> ProgramResult:
    """Profile, compile and evaluate one workload (uncached)."""
    module = spec.module()
    profile = profile_module(module, stdin=spec.profile_stdin,
                             files=spec.profile_files)
    compiler = NativeOffloaderCompiler(compiler_options
                                       or CompilerOptions())
    program = compiler.compile(module, profile)
    local = run_local(module, stdin=spec.eval_stdin, files=spec.eval_files)
    result = ProgramResult(spec=spec, profile=profile, program=program,
                           local=local)
    for label in labels:
        network, zero = CONFIG_NETWORKS[label]
        options = session_options or SessionOptions()
        if zero:
            options = SessionOptions(**{**options.__dict__,
                                        "zero_overhead": True})
        session = OffloadSession(program, network, options=options,
                                 stdin=spec.eval_stdin,
                                 files=spec.eval_files)
        result.sessions[label] = session.run()
    return result


_SUITE_CACHE: Dict[str, ProgramResult] = {}


def evaluate(name: str) -> ProgramResult:
    """Cached evaluation of one workload under the standard configs."""
    cached = _SUITE_CACHE.get(name)
    if cached is None:
        cached = run_program(workload(name))
        _SUITE_CACHE[name] = cached
    return cached


def evaluate_suite(names: Optional[List[str]] = None,
                   verbose: bool = False) -> Dict[str, ProgramResult]:
    """Cached evaluation of the whole (or a partial) Table 4 suite."""
    names = names or [w.name for w in SPEC_WORKLOADS]
    out: Dict[str, ProgramResult] = {}
    for name in names:
        if verbose and name not in _SUITE_CACHE:
            print(f"  evaluating {name} ...", flush=True)
        out[name] = evaluate(name)
    return out


def clear_cache() -> None:
    _SUITE_CACHE.clear()


def geomean(values: Iterable[float]) -> float:
    values = [max(v, 1e-12) for v in values]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))
