"""Plain-text rendering helpers for tables and figure series."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _cell(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def bar(value: float, scale: float = 1.0, width: int = 40,
        fill: str = "#") -> str:
    """A horizontal ASCII bar for figure-style output."""
    if scale <= 0:
        return ""
    n = int(round(min(value / scale, 1.0) * width))
    return fill * n


def sparkline(values: Sequence[float], width: int = 60) -> str:
    """Compress a series into a one-line sparkline."""
    if not values:
        return ""
    marks = " .:-=+*#%@"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    if len(values) > width:
        stride = len(values) / width
        values = [values[int(i * stride)] for i in range(width)]
    return "".join(
        marks[int((v - lo) / span * (len(marks) - 1))] for v in values)
